// Unit tests for the SnapshotService refresh-window / bundle state machine
// (the host-agnostic half of the flash-crowd late-join path). The AH's
// integration behaviour on top of this lives in
// tests/core/latejoin_cohort_test.cpp.
#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "buf/buf.hpp"

namespace ads::snapshot {
namespace {

SnapshotOptions enabled_opts() {
  SnapshotOptions o;
  o.enabled = true;
  o.refresh_interval_us = 500'000;
  return o;
}

// Synthetic builder standing in for the AH's encode+serialise callback:
// two 64x8 bands, one whole-stream fragment each, pooled buffers.
SnapshotService::BuildFn make_builder(buf::BufPool& pool, int* builds = nullptr) {
  return [&pool, builds](RefreshBundle& b) {
    if (builds != nullptr) ++(*builds);
    b.bands = {Rect{0, 0, 64, 8}, Rect{0, 8, 64, 8}};
    for (std::size_t i = 0; i < b.bands.size(); ++i) {
      BundleBand band;
      band.buf = pool.acquire(32);
      band.buf.bytes().assign(32, static_cast<std::uint8_t>(i));
      band.frags.push_back(FragmentSpan{0, 32, true});
      b.streams.push_back(std::move(band));
    }
    return true;
  };
}

constexpr BundleKey kKeyA{98, 0, 1200};
constexpr BundleKey kKeyB{102, 3, 1200};

TEST(SnapshotOptionsTest, ValidatedClampsNonsenseAndThrowsOnImpossible) {
  SnapshotOptions o;
  o.enabled = true;
  o.refresh_interval_us = 0;
  EXPECT_THROW(SnapshotService::validated(o), std::invalid_argument);

  // Disabled: a zero interval is inert configuration, not an error.
  o.enabled = false;
  EXPECT_NO_THROW(SnapshotService::validated(o));

  SnapshotOptions c = enabled_opts();
  c.max_bundles = 0;
  c.max_delta_fraction = 0.0;
  c = SnapshotService::validated(c);
  EXPECT_EQ(c.max_bundles, 1u);
  EXPECT_DOUBLE_EQ(c.max_delta_fraction, 0.5);

  c.max_delta_fraction = 1.5;
  c = SnapshotService::validated(c);
  EXPECT_DOUBLE_EQ(c.max_delta_fraction, 0.5);
}

TEST(SnapshotServiceTest, DisabledServiceRefusesAllDemand) {
  SnapshotService svc{SnapshotOptions{}};
  buf::BufPool pool;
  EXPECT_FALSE(svc.enabled());
  EXPECT_FALSE(svc.note_demand(0));
  EXPECT_EQ(svc.admit(kKeyA, 0, make_builder(pool)), nullptr);
  EXPECT_FALSE(svc.window_open());
  EXPECT_EQ(svc.stats().windows_opened, 0u);
  EXPECT_EQ(svc.stats().bundles_built, 0u);
}

TEST(SnapshotServiceTest, FirstDemandOpensWindowLaterDemandIsAbsorbed) {
  SnapshotService svc{enabled_opts()};
  EXPECT_FALSE(svc.note_demand(1'000));  // opens — not absorbed
  EXPECT_TRUE(svc.window_open());
  EXPECT_TRUE(svc.note_demand(2'000));
  EXPECT_TRUE(svc.note_demand(3'000));
  EXPECT_EQ(svc.stats().windows_opened, 1u);
  EXPECT_EQ(svc.stats().plis_absorbed, 2u);
}

TEST(SnapshotServiceTest, AdmitBuildsOncePerWindowThenServesShared) {
  SnapshotService svc{enabled_opts()};
  buf::BufPool pool;
  int builds = 0;
  const auto build = make_builder(pool, &builds);

  RefreshBundle* first = svc.admit(kKeyA, 10'000, build);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first->checkpoint, 1u);
  EXPECT_EQ(first->serves, 1u);
  ASSERT_EQ(first->bands.size(), 2u);
  ASSERT_EQ(first->streams.size(), 2u);

  // Nine more joiners of the same operating point: zero further builds.
  for (int i = 0; i < 9; ++i) {
    RefreshBundle* again = svc.admit(kKeyA, 10'000 + i, build);
    ASSERT_EQ(again, first);
  }
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first->serves, 10u);
  EXPECT_EQ(svc.stats().bundles_built, 1u);
  EXPECT_EQ(svc.stats().bundle_bands, 2u);
  EXPECT_EQ(svc.stats().bundles_served, 10u);
  // Each shared serve saved one encode per band.
  EXPECT_EQ(svc.stats().encodes_saved, 9u * 2u);

  // A different operating point builds its own bundle in the same window.
  RefreshBundle* other = svc.admit(kKeyB, 11'000, build);
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other, first);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(svc.bundle_count(), 2u);
  // One window for the whole wave.
  EXPECT_EQ(svc.stats().windows_opened, 1u);
}

// The satellite-5 regression at the unit level: the window is anchored at
// bundle *finalisation*, so demand arriving a full interval after the window
// opened — but within one interval of the build — is still absorbed.
TEST(SnapshotServiceTest, WindowReanchorsAtBundleFinalisation) {
  SnapshotService svc{enabled_opts()};  // 500 ms interval
  buf::BufPool pool;
  int builds = 0;
  const auto build = make_builder(pool, &builds);

  EXPECT_FALSE(svc.note_demand(0));            // window opens at t=0
  ASSERT_NE(svc.admit(kKeyA, 100'000, build), nullptr);  // anchor → 100 ms

  // t=500 ms: a full interval past the *open* instant but only 400 ms past
  // the anchor. The window must survive and the demand must be absorbed —
  // an open-anchored window would have expired here and forced a rebuild.
  svc.begin_tick(500'000);
  EXPECT_TRUE(svc.window_open());
  EXPECT_EQ(svc.bundle_count(), 1u);
  EXPECT_TRUE(svc.note_demand(500'000));
  ASSERT_NE(svc.admit(kKeyA, 500'000, build), nullptr);
  EXPECT_EQ(builds, 1);

  // One interval past the anchor the window closes and the bundles drop.
  svc.begin_tick(600'000);
  EXPECT_FALSE(svc.window_open());
  EXPECT_EQ(svc.bundle_count(), 0u);
  EXPECT_EQ(svc.stats().windows_closed, 1u);

  // The next demand starts a fresh wave with a fresh checkpoint.
  EXPECT_FALSE(svc.note_demand(700'000));
  ASSERT_NE(svc.admit(kKeyA, 700'000, build), nullptr);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(svc.checkpoint_id(), 2u);
}

TEST(SnapshotServiceTest, AdmissionPastBundleBudgetFallsBack) {
  SnapshotOptions o = enabled_opts();
  o.max_bundles = 1;
  SnapshotService svc{o};
  buf::BufPool pool;
  ASSERT_NE(svc.admit(kKeyA, 1'000, make_builder(pool)), nullptr);
  EXPECT_EQ(svc.admit(kKeyB, 1'000, make_builder(pool)), nullptr);
  EXPECT_EQ(svc.stats().budget_rejections, 1u);
  // The existing operating point still serves.
  EXPECT_NE(svc.admit(kKeyA, 2'000, make_builder(pool)), nullptr);
}

TEST(SnapshotServiceTest, BuilderFailureLeavesNothingCached) {
  SnapshotService svc{enabled_opts()};
  buf::BufPool pool;

  // Builder reports failure.
  EXPECT_EQ(svc.admit(kKeyA, 0, [](RefreshBundle&) { return false; }), nullptr);
  // Builder "succeeds" but produces no bands.
  EXPECT_EQ(svc.admit(kKeyA, 0, [](RefreshBundle&) { return true; }), nullptr);
  // Bands and streams disagree.
  EXPECT_EQ(svc.admit(kKeyA, 0,
                      [](RefreshBundle& b) {
                        b.bands = {Rect{0, 0, 8, 8}};
                        return true;  // no streams
                      }),
            nullptr);
  EXPECT_EQ(svc.stats().build_failures, 3u);
  EXPECT_EQ(svc.bundle_count(), 0u);

  // A later healthy build is unaffected.
  EXPECT_NE(svc.admit(kKeyA, 0, make_builder(pool)), nullptr);
}

TEST(SnapshotServiceTest, DeltaAccumulatesIntoEveryLiveBundle) {
  SnapshotService svc{enabled_opts()};
  buf::BufPool pool;
  RefreshBundle* a = svc.admit(kKeyA, 0, make_builder(pool));
  RefreshBundle* b = svc.admit(kKeyB, 0, make_builder(pool));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  svc.add_delta(Rect{0, 0, 10, 2});
  svc.add_delta(Rect{});  // empty rects are ignored
  EXPECT_EQ(a->delta.area(), 20);
  EXPECT_EQ(b->delta.area(), 20);
  EXPECT_EQ(svc.stats().delta_rects, 1u);
}

TEST(SnapshotServiceTest, BundleWhoseDeltaOutgrowsItsAreaIsEvicted) {
  SnapshotOptions o = enabled_opts();
  o.max_delta_fraction = 0.5;
  SnapshotService svc{o};
  buf::BufPool pool;
  int builds = 0;
  // Bundle area = 64x16 = 1024; budget = 512.
  ASSERT_NE(svc.admit(kKeyA, 0, make_builder(pool, &builds)), nullptr);

  svc.add_delta(Rect{0, 0, 64, 8});  // area 512 — exactly at budget, stays
  svc.begin_tick(100'000);
  EXPECT_EQ(svc.bundle_count(), 1u);
  EXPECT_EQ(svc.stats().delta_evictions, 0u);

  svc.add_delta(Rect{0, 8, 64, 2});  // 640 total — over budget
  svc.begin_tick(200'000);
  EXPECT_EQ(svc.bundle_count(), 0u);
  EXPECT_EQ(svc.stats().delta_evictions, 1u);
  // The window itself stays open; the next admission rebuilds fresh.
  EXPECT_TRUE(svc.window_open());
  ASSERT_NE(svc.admit(kKeyA, 200'000, make_builder(pool, &builds)), nullptr);
  EXPECT_EQ(builds, 2);
}

TEST(SnapshotServiceTest, InvalidateDropsBundlesAndClosesWindow) {
  SnapshotService svc{enabled_opts()};
  buf::BufPool pool;

  // Invalidate on an idle service is a no-op.
  svc.invalidate();
  EXPECT_EQ(svc.stats().invalidations, 0u);

  ASSERT_NE(svc.admit(kKeyA, 0, make_builder(pool)), nullptr);
  svc.invalidate();
  EXPECT_FALSE(svc.window_open());
  EXPECT_EQ(svc.bundle_count(), 0u);
  EXPECT_EQ(svc.stats().invalidations, 1u);
  EXPECT_EQ(svc.stats().windows_closed, 1u);
}

TEST(SnapshotServiceTest, BundleStreamsRecycleToThePoolOnWindowClose) {
  SnapshotService svc{enabled_opts()};
  buf::BufPool pool;
  ASSERT_NE(svc.admit(kKeyA, 0, make_builder(pool)), nullptr);
  EXPECT_EQ(pool.stats().outstanding, 2u);
  svc.begin_tick(500'000);  // interval elapsed → window closes
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().recycles, 2u);
}

}  // namespace
}  // namespace ads::snapshot
