// Round-trip tests for the ADSREC01 checkpoint + update stream
// (docs/LATEJOIN.md §5): record a synthetic session, replay it, and require
// the reconstructed frame/WMI/pointer to match bit-exactly. Also pins the
// checkpoint-seek (replay starts at the LAST checkpoint) and the framing
// failure modes.
#include "snapshot/record.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "codec/registry.hpp"
#include "image/metrics.hpp"

namespace ads::snapshot {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "ads_" + name + ".adsrec";
}

Bytes png_encode(const Image& img) {
  static const CodecRegistry codecs = CodecRegistry::with_defaults();
  return codecs.find(ContentPt::kPng)->encode(img);
}

WindowManagerInfo one_window(std::uint16_t id) {
  WindowManagerInfo wmi;
  WindowRecord rec;
  rec.window_id = id;
  rec.left = 4;
  rec.top = 4;
  rec.width = 16;
  rec.height = 16;
  wmi.records.push_back(rec);
  return wmi;
}

TEST(RecordReplayTest, RoundTripReconstructsFrameWmiAndPointer) {
  const std::string path = temp_path("roundtrip");
  Image truth(64, 48, Pixel{200, 30, 30, 255});

  {
    SessionRecorder rec(path);
    ASSERT_TRUE(rec.ok());
    rec.checkpoint(1'000, truth, one_window(1), Point{1, 2});

    // One damage band...
    const Rect band{8, 8, 16, 16};
    truth.fill_rect(band, Pixel{20, 40, 220, 255});
    rec.region_update(2'000, band, ContentPt::kPng,
                      png_encode(truth.crop(band)));

    // ...one verified scroll...
    MoveRectangle mr;
    mr.source_left = 8;
    mr.source_top = 8;
    mr.width = 16;
    mr.height = 16;
    mr.dest_left = 40;
    mr.dest_top = 20;
    truth.move_rect(Rect{8, 8, 16, 16}, Point{40, 20});
    rec.move_rect(3'000, mr);

    // ...a WMI change and a pointer move.
    rec.wmi(3'500, one_window(2));
    rec.pointer(4'000, Point{7, 9});
    rec.finish();
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.stats().checkpoints, 1u);
    EXPECT_EQ(rec.stats().region_updates, 1u);
    EXPECT_EQ(rec.stats().move_rects, 1u);
    EXPECT_EQ(rec.stats().wmi_records, 1u);
    EXPECT_EQ(rec.stats().pointer_records, 1u);
    EXPECT_GT(rec.stats().bytes_written, 8u);
  }

  SessionReplayer rep(path);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.replay());
  EXPECT_EQ(diff_pixel_count(rep.frame(), truth), 0);
  EXPECT_EQ(rep.windows(), one_window(2));
  EXPECT_EQ(rep.pointer(), (Point{7, 9}));
  EXPECT_EQ(rep.last_time_us(), 4'000);
  EXPECT_EQ(rep.stats().checkpoints_seen, 1u);
  EXPECT_EQ(rep.stats().records_total, 6u);  // 5 records + kEnd
  EXPECT_EQ(rep.stats().region_updates_applied, 1u);
  EXPECT_EQ(rep.stats().move_rects_applied, 1u);
  EXPECT_EQ(rep.stats().decode_errors, 0u);
  std::remove(path.c_str());
}

TEST(RecordReplayTest, ReplaySeeksToLastCheckpoint) {
  const std::string path = temp_path("seek");
  const Image red(32, 24, Pixel{255, 0, 0, 255});
  const Image green(32, 24, Pixel{0, 255, 0, 255});

  {
    SessionRecorder rec(path);
    ASSERT_TRUE(rec.ok());
    rec.checkpoint(1'000, red, {}, Point{0, 0});
    // Pre-second-checkpoint updates must NOT be applied on replay.
    rec.region_update(2'000, red.bounds(), ContentPt::kPng,
                      png_encode(Image(32, 24, Pixel{0, 0, 255, 255})));
    rec.checkpoint(3'000, green, {}, Point{0, 0});
    rec.pointer(3'500, Point{3, 4});
    rec.finish();
  }

  SessionReplayer rep(path);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.replay());
  EXPECT_EQ(rep.stats().checkpoints_seen, 2u);
  EXPECT_EQ(rep.stats().region_updates_applied, 0u);
  EXPECT_EQ(diff_pixel_count(rep.frame(), green), 0);
  EXPECT_EQ(rep.pointer(), (Point{3, 4}));
  EXPECT_EQ(rep.last_time_us(), 3'500);
  std::remove(path.c_str());
}

TEST(RecordReplayTest, StreamWithoutCheckpointRefusesReplay) {
  const std::string path = temp_path("nocheckpoint");
  {
    SessionRecorder rec(path);
    ASSERT_TRUE(rec.ok());
    rec.pointer(1'000, Point{1, 1});
    rec.finish();
  }
  SessionReplayer rep(path);
  EXPECT_TRUE(rep.ok());  // framing is sound...
  EXPECT_FALSE(rep.replay());  // ...but there is no anchor to seek to
  std::remove(path.c_str());
}

TEST(RecordReplayTest, BadMagicIsRejected) {
  const std::string path = temp_path("badmagic");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("NOTADSRC", 8);
    out.write("\x01\x00", 2);
  }
  SessionReplayer rep(path);
  EXPECT_FALSE(rep.ok());
  std::remove(path.c_str());
}

TEST(RecordReplayTest, MissingFileIsRejected) {
  SessionReplayer rep(temp_path("never_written"));
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.replay());
}

TEST(RecordReplayTest, TruncatedRecordFailsFraming) {
  const std::string path = temp_path("truncated");
  {
    SessionRecorder rec(path);
    ASSERT_TRUE(rec.ok());
    rec.checkpoint(1'000, Image(16, 16), {}, Point{0, 0});
    rec.finish();
  }
  // Chop into the trailing kEnd record's framing header.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(data.size(), 5u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() - 5));
  out.close();

  SessionReplayer rep(path);
  EXPECT_FALSE(rep.ok());
  std::remove(path.c_str());
}

TEST(RecordReplayTest, UnwritablePathLatchesNotOkAndWritesNoOp) {
  SessionRecorder rec("/nonexistent-dir/ads.rec");
  EXPECT_FALSE(rec.ok());
  rec.checkpoint(0, Image(8, 8), {}, Point{0, 0});
  rec.finish();
  EXPECT_EQ(rec.stats().checkpoints, 0u);
  EXPECT_EQ(rec.stats().bytes_written, 0u);
}

}  // namespace
}  // namespace ads::snapshot
