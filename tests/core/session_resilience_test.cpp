// Session-level fault recovery: hard TCP drops, reconnect + resync through
// the late-join path, mid-frame disconnect safety for the RFC 4571 parsers,
// and liveness eviction working together with reconnection.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions small_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

TcpLinkConfig fast_tcp() {
  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 1024 * 1024;
  link.up.bandwidth_bps = 10'000'000;
  return link;
}

void expect_converged(SharingSession& session,
                      const SharingSession::Connection& conn) {
  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(SessionResilience, TcpDropThenReconnectResyncsViaLateJoinPath) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& conn = session.add_tcp_participant({}, fast_tcp());
  const ParticipantId original_id = conn.id;
  session.host().start();
  session.run_for(sim_sec(1));
  const std::uint64_t updates_before = conn.participant->stats().region_updates;
  EXPECT_GT(updates_before, 0u);

  // Hard drop: both directions die, in-flight data is lost.
  session.drop_tcp(conn);
  session.run_for(sim_sec(1));
  // The link is down; nothing new arrives.
  EXPECT_TRUE(conn.down_tcp->down());

  session.reconnect_tcp(conn, fast_tcp());
  EXPECT_EQ(conn.id, original_id);  // identity survives the reconnect
  session.run_for(sim_sec(2));
  session.host().stop();
  session.run_for(sim_sec(1));

  const auto& st = conn.participant->stats();
  EXPECT_EQ(st.transport_resets, 1u);
  // §4.4 resync: the fresh registration re-sent WMI + full refresh.
  EXPECT_GE(st.wmi_received, 2u);
  expect_converged(session, conn);

  auto snap = session.telemetry().snapshot();
  EXPECT_EQ(snap.counter("recovery.dropped_links"), 1u);
  EXPECT_EQ(snap.counter("recovery.reconnects"), 1u);
  EXPECT_EQ(snap.counter("participant.transport_resets"), 1u);
  EXPECT_GT(snap.counter("net.tcp.bytes_lost_on_drop"), 0u);
}

TEST(SessionResilience, MidFrameDisconnectDoesNotDesyncUplinkParser) {
  // Force the uplink into a state where a partially-written RFC 4571 frame
  // sits in up_carry (and its prefix in the AH's deframer), then drop and
  // reconnect. Neither side may misparse the new byte stream.
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 96, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(96, 96, 3));

  TcpLinkConfig link = fast_tcp();
  link.up.bandwidth_bps = 200'000;        // slow uplink...
  link.up.send_buffer_bytes = 512;        // ...with a tiny send buffer
  auto& conn = session.add_tcp_participant({}, link);
  session.host().start();
  session.run_for(sim_ms(500));

  // Burst of HIP traffic: far more than the uplink accepts, so a frame is
  // guaranteed to be torn at the send-buffer boundary.
  for (int i = 0; i < 40; ++i) {
    conn.participant->mouse_move(10 + static_cast<std::uint32_t>(i), 20);
  }
  EXPECT_FALSE(conn.up_carry.empty());  // partial frame stuck in the carry
  session.run_for(sim_ms(50));          // its prefix reaches the AH

  session.drop_tcp(conn);
  session.run_for(sim_ms(300));
  session.reconnect_tcp(conn, fast_tcp());
  EXPECT_TRUE(conn.up_carry.empty());   // the torn frame died with the link

  // Fresh HIP traffic over the new stream must parse cleanly.
  for (int i = 0; i < 10; ++i) {
    conn.participant->mouse_move(50 + static_cast<std::uint32_t>(i), 60);
  }
  session.run_for(sim_sec(1));
  session.host().stop();
  session.run_for(sim_sec(1));

  EXPECT_EQ(session.host().stats().hip_parse_errors, 0u);
  // The post-reconnect events made it through the floor gate's classifier
  // (rejected by BFCP, but structurally parsed).
  EXPECT_GT(session.host().stats().hip_events_rejected_floor, 0u);
  expect_converged(session, conn);
}

TEST(SessionResilience, FloorGrantSurvivesReconnect) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 96, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(96, 96, 3));

  auto& conn = session.add_tcp_participant({}, fast_tcp());
  session.host().start();
  session.run_for(sim_ms(300));
  conn.participant->request_floor();
  session.run_for(sim_ms(300));
  ASSERT_TRUE(conn.participant->has_floor());

  session.drop_tcp(conn);
  session.run_for(sim_ms(200));
  session.reconnect_tcp(conn, fast_tcp());
  session.run_for(sim_ms(300));

  // Same ParticipantId, so the BFCP floor grant still applies: HIP events
  // inside the shared window are accepted, not floor-rejected.
  const std::uint64_t rejected_before =
      session.host().stats().hip_events_rejected_floor;
  conn.participant->mouse_move(10, 10);
  session.run_for(sim_ms(300));
  session.host().stop();
  session.run_for(sim_ms(200));
  EXPECT_GT(session.host().stats().hip_events_accepted, 0u);
  EXPECT_EQ(session.host().stats().hip_events_rejected_floor, rejected_before);
}

TEST(SessionResilience, DroppedTcpParticipantIsEvictedThenRevivedByReconnect) {
  AppHostOptions host_opts = small_host();
  host_opts.stale_after_us = sim_ms(1500);
  host_opts.evict_after_us = sim_sec(3);
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(128, 96, 3));

  auto& conn = session.add_tcp_participant({}, fast_tcp());
  const ParticipantId id = conn.id;
  session.host().start();
  session.run_for(sim_sec(1));
  ASSERT_EQ(session.host().participant_count(), 1u);

  session.drop_tcp(conn);
  session.run_for(sim_sec(4));  // silence -> stale -> evicted
  EXPECT_EQ(session.host().participant_count(), 0u);
  EXPECT_EQ(session.evicted_connections(), 1u);
  EXPECT_EQ(conn.down_tcp, nullptr);  // session reclaimed the channels

  session.reconnect_tcp(conn, fast_tcp());
  EXPECT_EQ(conn.id, id);  // the old id was free again
  session.run_for(sim_sec(2));
  session.host().stop();
  session.run_for(sim_sec(1));

  EXPECT_EQ(session.host().participant_count(), 1u);
  expect_converged(session, conn);
  auto snap = session.telemetry().snapshot();
  EXPECT_EQ(snap.counter("liveness.evictions"), 1u);
  EXPECT_EQ(snap.counter("recovery.reconnects"), 1u);
}

TEST(SessionResilience, NackRetriesAreBoundedPerSequenceAndEscalateToPli) {
  // The AH never retransmits, so every NACK is futile: each missing
  // sequence may be asked for at most max_nack_per_seq times before the
  // participant climbs the ladder to a PLI full refresh.
  AppHostOptions host_opts = small_host();
  host_opts.retransmissions = false;
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  UdpLinkConfig lossy;
  lossy.down.delay_us = 2000;
  lossy.down.bandwidth_bps = 50'000'000;
  lossy.down.loss = 0.15;
  lossy.down.seed = 41;
  lossy.up.delay_us = 2000;
  ParticipantOptions popts;
  popts.send_nacks = true;
  popts.max_nack_rounds = 1000;             // only the per-seq cap may trip
  popts.loss_recovery_delay_us = sim_sec(30);  // keep the fallback timer out
  popts.max_nack_per_seq = 3;
  auto& conn = session.add_udp_participant(popts, lossy);
  conn.participant->join();
  session.host().start();
  session.run_for(sim_sec(4));

  const auto& st = conn.participant->stats();
  EXPECT_GT(st.nacks_sent, 0u);
  EXPECT_GT(st.nack_escalations, 0u);
  EXPECT_GT(st.plis_sent, 1u);  // join + at least one escalation refresh

  // Heal the link; the escalation refreshes must converge the replica.
  conn.down_udp->set_loss(0.0);
  session.run_for(sim_sec(2));
  session.host().stop();
  session.run_for(sim_sec(1));
  expect_converged(session, conn);

  auto snap = session.telemetry().snapshot();
  EXPECT_EQ(snap.counter("participant.nack_escalations"), st.nack_escalations);
}

TEST(SessionResilience, UdpUplinkSilenceMarksStaleWithoutEvictionWhenDisabled) {
  // stale_after set, evict_after left 0: the AH flags the peer but must not
  // remove it — and the flag clears when the uplink resumes.
  AppHostOptions host_opts = small_host();
  host_opts.stale_after_us = sim_sec(1);
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 96, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(96, 96, 3));

  ParticipantOptions popts;
  popts.rr_interval_us = 0;           // no periodic uplink chatter
  popts.starvation_timeout_us = 0;    // no watchdog PLIs either
  auto& conn = session.add_udp_participant(popts, {});
  conn.participant->join();
  session.host().start();
  session.run_for(sim_ms(2500));
  EXPECT_TRUE(session.host().participant_stale(conn.id));
  EXPECT_EQ(session.host().participant_count(), 1u);

  conn.participant->request_refresh();  // uplink activity again
  session.run_for(sim_ms(300));
  EXPECT_FALSE(session.host().participant_stale(conn.id));
  session.host().stop();
  session.run_for(sim_ms(500));
}

}  // namespace
}  // namespace ads
