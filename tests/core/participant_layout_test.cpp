#include "core/participant_layout.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

/// The Figure 2 scenario (same records as the Figure 9 golden message):
/// A bottom, C middle, B top.
std::vector<WindowRecord> figure2_records() {
  return {
      {1, 1, 220, 150, 350, 450},  // A
      {2, 2, 850, 320, 160, 150},  // C
      {3, 1, 450, 400, 350, 300},  // B
  };
}

TEST(Layout, OriginalIsIdentity) {
  // Figure 3: participant 1 displays windows in their original coordinates.
  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kOriginal,
                                     1024, 768);
  ASSERT_EQ(placed.size(), 3u);
  for (const auto& p : placed) EXPECT_EQ(p.placed, p.source);
}

TEST(Layout, ShiftMatchesFigure4) {
  // Figure 4: "Participant 2 shifts all the windows 220 pixels left and 150
  // pixels up" — i.e. the ensemble bounding box moves to the origin.
  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kShift,
                                     1280, 1024);
  ASSERT_EQ(placed.size(), 3u);
  EXPECT_EQ(placed[0].placed, (Rect{0, 0, 350, 450}));       // A
  EXPECT_EQ(placed[1].placed, (Rect{630, 170, 160, 150}));   // C
  EXPECT_EQ(placed[2].placed, (Rect{230, 250, 350, 300}));   // B
}

TEST(Layout, ShiftPreservesRelativePositions) {
  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kShift,
                                     1280, 1024);
  // B - A offsets must match the original (450-220, 400-150).
  EXPECT_EQ(placed[2].placed.left - placed[0].placed.left, 230);
  EXPECT_EQ(placed[2].placed.top - placed[0].placed.top, 250);
}

TEST(Layout, RefitFitsSmallScreen) {
  // Figure 5: participant 3 "combines all the windows in order to fit them
  // to its small screen" (640x480).
  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kRefit,
                                     640, 480);
  ASSERT_EQ(placed.size(), 3u);
  for (const auto& p : placed) {
    EXPECT_GE(p.placed.left, 0);
    EXPECT_GE(p.placed.top, 0);
    // Each window's origin is on-screen and as much of the window as the
    // screen allows stays visible.
    EXPECT_LT(p.placed.left, 640);
    EXPECT_LT(p.placed.top, 480);
  }
  // Window sizes are preserved (participants clip at render time).
  EXPECT_EQ(placed[0].placed.width, 350);
  EXPECT_EQ(placed[2].placed.height, 300);
}

TEST(Layout, RefitPreservesZOrder) {
  // "In this example scenario, all participants preserve the z-order."
  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kRefit,
                                     640, 480);
  EXPECT_EQ(placed[0].window_id, 1);
  EXPECT_EQ(placed[1].window_id, 2);
  EXPECT_EQ(placed[2].window_id, 3);
}

TEST(Layout, RefitOnLargeScreenEqualsShift) {
  const auto refit = layout_windows(figure2_records(), LayoutPolicy::kRefit,
                                    1280, 1024);
  const auto shift = layout_windows(figure2_records(), LayoutPolicy::kShift,
                                    1280, 1024);
  EXPECT_EQ(refit, shift);
}

TEST(Layout, EmptyRecordsYieldEmptyPlacement) {
  EXPECT_TRUE(layout_windows({}, LayoutPolicy::kShift, 100, 100).empty());
}

TEST(Layout, GroupIdsCarriedThrough) {
  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kOriginal,
                                     1024, 768);
  EXPECT_EQ(placed[0].group_id, 1);
  EXPECT_EQ(placed[1].group_id, 2);
}

TEST(RenderLayout, CopiesWindowPixelsToPlacedPositions) {
  // Build a replica screen where window A's area is red and B's is green.
  Image screen(1280, 1024, kBlack);
  screen.fill_rect({220, 150, 350, 450}, Pixel{255, 0, 0, 255});
  screen.fill_rect({450, 400, 350, 300}, Pixel{0, 255, 0, 255});

  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kShift,
                                     1280, 1024);
  const Image view = render_layout(screen, placed, 1024, 768);
  // A now at origin: red.
  EXPECT_EQ(view.at(10, 10), (Pixel{255, 0, 0, 255}));
  // B at (230,250): green wins over A (drawn later = on top).
  EXPECT_EQ(view.at(300, 300), (Pixel{0, 255, 0, 255}));
  // Outside all windows: black.
  EXPECT_EQ(view.at(1000, 700), kBlack);
}

TEST(RenderLayout, ZOrderTopWindowWins) {
  Image screen(1280, 1024, kBlack);
  screen.fill_rect({220, 150, 350, 450}, Pixel{255, 0, 0, 255});
  screen.fill_rect({450, 400, 350, 300}, Pixel{0, 255, 0, 255});
  const auto placed = layout_windows(figure2_records(), LayoutPolicy::kOriginal,
                                     1280, 1024);
  const Image view = render_layout(screen, placed, 1280, 1024);
  // The A/B overlap (e.g. 500,450) shows B (top).
  EXPECT_EQ(view.at(500, 450), (Pixel{0, 255, 0, 255}));
}

}  // namespace
}  // namespace ads
