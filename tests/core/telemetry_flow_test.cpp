// End-to-end telemetry: one 50-tick AppHost session over a lossy UDP link
// produces a single Snapshot whose counters satisfy cross-layer invariants
// (AH ↔ encoder ↔ cache ↔ rtx ↔ net), and the whole snapshot — spans
// included — is bit-reproducible across runs.
#include <gtest/gtest.h>

#include <string>

#include "core/session.hpp"
#include "telemetry/export.hpp"

namespace ads {
namespace {

AppHostOptions host_options() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  opts.trace_capacity = 4096;  // hold every span of a 50-tick run
  return opts;
}

UdpLinkConfig lossy_link() {
  UdpLinkConfig link;
  link.down.delay_us = 2000;
  link.down.bandwidth_bps = 50'000'000;
  link.down.loss = 0.10;
  link.down.seed = 77;
  link.up.delay_us = 2000;  // clean feedback path
  return link;
}

/// Runs the canonical 50-tick lossy session to completion (drained) and
/// returns the session for inspection.
telemetry::Snapshot run_session(std::string* json_out = nullptr) {
  SharingSession session(host_options());
  const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  ParticipantOptions popts;
  popts.send_nacks = true;
  auto& conn = session.add_udp_participant(popts, lossy_link());
  conn.participant->join();
  session.host().start();
  session.run_for(sim_sec(5));  // 50 ticks at 100 ms
  session.host().stop();
  session.run_for(sim_sec(2));  // drain in-flight datagrams and repairs

  telemetry::Snapshot snap = session.telemetry().snapshot();
  if (json_out != nullptr) *json_out = telemetry::to_json(snap);

  // Registry totals mirror the ad-hoc structs exactly (collector pattern).
  EXPECT_EQ(snap.counter("ah.frames_captured"),
            session.host().stats().frames_captured);
  EXPECT_EQ(snap.counter("ah.rtp_packets_sent"),
            session.host().stats().rtp_packets_sent);
  EXPECT_EQ(snap.counter("participant.nacks_sent"),
            conn.participant->stats().nacks_sent);
  EXPECT_EQ(snap.counter("net.udp.lost"),
            conn.down_udp->stats().lost + conn.up_udp->stats().lost);
  return snap;
}

TEST(TelemetryFlow, CrossLayerInvariantsAfterLossySession) {
  const telemetry::Snapshot snap = run_session();

  EXPECT_EQ(snap.counter("ah.frames_captured"), 50u);

  // Encoder vs cache: every requested band either hit the cache or ran a
  // codec, and the cache (enabled by default) saw every request.
  const std::uint64_t requested = snap.counter("encoder.bands_requested");
  EXPECT_GT(requested, 0u);
  EXPECT_EQ(requested,
            snap.counter("cache.hits") + snap.counter("cache.misses"));
  EXPECT_EQ(snap.counter("encoder.bands_encoded"), snap.counter("cache.misses"));
  EXPECT_GE(snap.gauge("encoder.queue_depth_peak"), 1);

  // Net conservation: with duplication off and the loop drained, every
  // datagram offered to a UDP channel was delivered, randomly lost, or
  // tail-dropped — nothing in flight, nothing unaccounted.
  EXPECT_EQ(snap.counter("net.udp.duplicated"), 0u);
  EXPECT_EQ(snap.counter("net.udp.sent"),
            snap.counter("net.udp.delivered") + snap.counter("net.udp.lost") +
                snap.counter("net.udp.queue_dropped"));
  EXPECT_GT(snap.counter("net.udp.lost"), 0u);  // the link really was lossy

  // Repair loop: losses → NACKs → retransmission-cache hits → repairs.
  // The feedback path is clean, so every NACK sent arrived.
  EXPECT_GT(snap.counter("participant.nacks_sent"), 0u);
  EXPECT_EQ(snap.counter("ah.nacks_received"),
            snap.counter("participant.nacks_sent"));
  // The rate bucket is unlimited here, so every served NACK seq that was
  // still cached went straight out as a retransmission.
  EXPECT_EQ(snap.counter("ah.retransmissions_sent"), snap.counter("rtx.hits"));
  EXPECT_GT(snap.counter("rtx.hits"), 0u);

  // The shared queue-delay histogram saw every datagram the channels took
  // (loss happens after queueing, so lost datagrams are observed too).
  const auto it = snap.histograms.find("net.udp.queue_delay_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count,
            snap.counter("net.udp.sent") - snap.counter("net.udp.queue_dropped"));

  EXPECT_EQ(snap.gauge("ah.participants"), 1);
}

TEST(TelemetryFlow, TickPipelineSpansAreRecorded) {
  const telemetry::Snapshot snap = run_session();
  ASSERT_FALSE(snap.spans.empty());

  std::uint64_t ticks = 0, captures = 0, damages = 0, distributes = 0,
                encodes = 0, packetises = 0, rtcps = 0;
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (const telemetry::SpanRecord& s : snap.spans) {
    EXPECT_LE(s.begin_us, s.end_us);
    if (!first) EXPECT_GT(s.seq, prev_seq);  // completion order preserved
    prev_seq = s.seq;
    first = false;
    const std::string_view name = s.name;
    ticks += name == "ah.tick";
    captures += name == "ah.capture";
    damages += name == "ah.damage";
    distributes += name == "ah.distribute";
    encodes += name == "ah.encode";
    packetises += name == "ah.packetise";
    rtcps += name == "ah.rtcp";
  }
  // One of each per tick (sub-spans close before their tick closes).
  EXPECT_EQ(ticks, 50u);
  EXPECT_EQ(captures, 50u);
  EXPECT_EQ(damages, 50u);
  EXPECT_EQ(distributes, 50u);
  // Encode/packetise run once per send_regions call — at least one per
  // frame that shipped regions, and the SR cadence fired at least once.
  EXPECT_GT(encodes, 0u);
  EXPECT_EQ(encodes, packetises);
  EXPECT_GE(rtcps, 4u);  // 1 s cadence over a 5 s run
}

// The snapshot.* / join.* families (docs/TELEMETRY.md): registry totals
// mirror the SnapshotService and AH structs exactly, and the flash-crowd
// counters satisfy their cross-layer arithmetic after a join wave.
TEST(TelemetryFlow, SnapshotAndJoinFamiliesSatisfyInvariants) {
  AppHostOptions opts = host_options();
  opts.snapshot.enabled = true;
  opts.snapshot.refresh_interval_us = sim_ms(300);
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 3));
  host.start();
  session.run_for(sim_ms(500));

  ParticipantOptions popts;
  popts.starvation_timeout_us = 0;  // scripted wave: no organic re-PLIs
  std::vector<SharingSession::Connection*> crowd;
  for (int i = 0; i < 4; ++i) {
    crowd.push_back(&session.add_udp_participant(popts, UdpLinkConfig{}));
  }
  for (auto* c : crowd) c->participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  const telemetry::Snapshot snap = session.telemetry().snapshot();
  const auto& sn = host.snapshot_service().stats();
  const auto& hs = host.stats();

  // Collector pattern: the registry mirrors the structs verbatim.
  EXPECT_EQ(snap.counter("snapshot.windows_opened"), sn.windows_opened);
  EXPECT_EQ(snap.counter("snapshot.bundles_built"), sn.bundles_built);
  EXPECT_EQ(snap.counter("snapshot.bundles_served"), sn.bundles_served);
  EXPECT_EQ(snap.counter("snapshot.plis_absorbed"), sn.plis_absorbed);
  EXPECT_EQ(snap.counter("snapshot.encodes_saved"), sn.encodes_saved);
  EXPECT_EQ(snap.counter("join.admissions"), hs.join_admissions);
  EXPECT_EQ(snap.counter("join.shared_refreshes"), hs.join_shared_refreshes);
  EXPECT_EQ(snap.counter("join.fallback_refreshes"),
            hs.join_fallback_refreshes);
  EXPECT_EQ(snap.gauge("snapshot.live_bundles"),
            static_cast<std::int64_t>(host.snapshot_service().bundle_count()));

  // The wave really went through the snapshot path.
  EXPECT_GT(snap.counter("snapshot.windows_opened"), 0u);
  EXPECT_GT(snap.counter("snapshot.bundles_built"), 0u);
  EXPECT_EQ(snap.counter("join.admissions"), 4u);

  // Cross-layer arithmetic: with snapshots on, every admission is served
  // either from a bundle or through the §4.4 fallback — never both, never
  // neither. One wave == one window, and every received PLI either opened
  // a window or was absorbed into one.
  EXPECT_EQ(snap.counter("join.admissions"),
            snap.counter("join.shared_refreshes") +
                snap.counter("join.fallback_refreshes"));
  EXPECT_EQ(snap.counter("join.waves"), snap.counter("snapshot.windows_opened"));
  EXPECT_LE(snap.counter("snapshot.windows_closed"),
            snap.counter("snapshot.windows_opened"));
  EXPECT_GE(snap.counter("snapshot.bundles_served"),
            snap.counter("snapshot.bundles_built"));
  EXPECT_GE(snap.counter("snapshot.windows_opened") +
                snap.counter("snapshot.plis_absorbed"),
            snap.counter("ah.plis_received"));
}

TEST(TelemetryFlow, SnapshotJsonIsBitReproducible) {
  std::string first, second;
  run_session(&first);
  run_session(&second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TelemetryFlow, InjectedTelemetryIsShared) {
  // A caller-owned Telemetry outlives the session and receives the same
  // wiring as the AH-private default.
  telemetry::Telemetry tel;
  AppHostOptions opts = host_options();
  opts.telemetry = &tel;
  {
    SharingSession session(opts);
    const WindowId w = session.host().wm().create({0, 0, 96, 96}, 1);
    session.host().capturer().attach(w, std::make_unique<SlideshowApp>(96, 96, 3));
    auto& conn = session.add_udp_participant({}, UdpLinkConfig{});
    conn.participant->join();
    session.host().start();
    session.run_for(sim_sec(1));
    EXPECT_EQ(&session.telemetry(), &tel);
    EXPECT_GT(tel.snapshot().counter("ah.frames_captured"), 0u);
  }
  // Session gone: collectors were removed, snapshot() still works and
  // keeps the last published totals.
  const telemetry::Snapshot after = tel.snapshot();
  EXPECT_GT(after.counter("ah.frames_captured"), 0u);
}

}  // namespace
}  // namespace ads
