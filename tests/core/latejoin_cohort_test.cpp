// Flash-crowd late-join integration tests (docs/LATEJOIN.md): join cohorts
// served from checkpoint refresh bundles, PLI aggregation-window semantics,
// and the admission edges — demand at the bundle-finalisation instant, a
// TCP joiner behind the §7 backlog gate, bundle-budget fallback, and a
// relay crash mid-refresh.
//
// The PliAtBundleFinalisationIsAbsorbed test is the refresh-storm
// regression: before the finalisation-anchored window fix in
// src/snapshot/snapshot.cpp, a PLI landing in the same tick a bundle was
// finalised (or late in an open-anchored window) expired the window early
// and forced a second checkpoint encode for the same wave.
#include <gtest/gtest.h>

#include <memory>

#include "capture/apps.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "rtp/rtcp.hpp"

namespace ads {
namespace {

AppHostOptions snap_host(std::int64_t w = 320, std::int64_t h = 240) {
  AppHostOptions opts;
  opts.screen_width = w;
  opts.screen_height = h;
  opts.frame_interval_us = sim_ms(100);
  opts.snapshot.enabled = true;
  opts.snapshot.refresh_interval_us = sim_ms(300);
  return opts;
}

UdpLinkConfig clean_link() {
  UdpLinkConfig link;
  link.down.delay_us = 2000;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 2000;
  return link;
}

Image replica_of(const SharingSession::Connection& conn, const Image& truth) {
  return conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
}

TEST(LateJoinCohort, FlashCrowdWaveSharesOneBundleEncode) {
  SharingSession session(snap_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 128, 96}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(128, 96, 3));
  host.start();
  session.run_for(sim_ms(500));  // stream already warm when the crowd hits

  // Eight joiners in one instant: their PLIs all land inside one refresh
  // window and the whole cohort is served from a single checkpoint encode.
  constexpr int kCrowd = 8;
  // The wave is fully scripted: disable the starvation retry ladder, whose
  // organic re-PLI would land after host.stop() and open a second (never
  // admitted) window that has nothing to do with the join wave itself.
  ParticipantOptions popts;
  popts.starvation_timeout_us = 0;
  std::vector<SharingSession::Connection*> crowd;
  for (int i = 0; i < kCrowd; ++i) {
    crowd.push_back(&session.add_udp_participant(popts, clean_link()));
  }
  for (auto* c : crowd) c->participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  const auto& sn = host.snapshot_service().stats();
  EXPECT_EQ(sn.windows_opened, 1u);
  EXPECT_EQ(sn.bundles_built, 1u);  // ≤1 cohort encode for the whole wave
  EXPECT_EQ(sn.bundles_served, static_cast<std::uint64_t>(kCrowd));
  EXPECT_GE(sn.plis_absorbed, static_cast<std::uint64_t>(kCrowd - 1));
  EXPECT_GT(sn.encodes_saved, 0u);
  EXPECT_EQ(host.stats().join_admissions, static_cast<std::uint64_t>(kCrowd));
  EXPECT_EQ(host.stats().join_shared_refreshes,
            static_cast<std::uint64_t>(kCrowd));
  EXPECT_EQ(host.stats().join_fallback_refreshes, 0u);

  const Image& truth = host.capturer().last_frame();
  for (auto* c : crowd) {
    EXPECT_EQ(diff_pixel_count(truth, replica_of(*c, truth)), 0);
    EXPECT_EQ(c->participant->stats().decode_errors, 0u);
  }
}

// The refresh-storm regression (finalisation-anchored window): demand at the
// bundle's finalisation instant and demand a full interval past the window
// *open* — but inside the interval measured from the *build* — must both be
// absorbed by the existing bundle, never trigger a second encode.
TEST(LateJoinCohort, PliAtBundleFinalisationIsAbsorbed) {
  AppHostOptions opts = snap_host();
  opts.snapshot.refresh_interval_us = sim_ms(250);
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 64, 64}, 1);
  // Static content after the first slide: the checkpoint alone converges.
  host.capturer().attach(w,
                         std::make_unique<SlideshowApp>(64, 64, 2, 1'000'000));

  auto& a = session.add_udp_participant({}, clean_link());
  auto& b = session.add_udp_participant({}, clean_link());
  auto& c = session.add_udp_participant({}, clean_link());
  const PictureLossIndication pli;

  auto step = [&](SimTime dur = sim_ms(100)) {
    host.tick();
    session.run_for(dur);
  };

  step();  // t=0: initial paint, nobody needs a refresh yet
  session.run_for(sim_ms(50));                   // t=150ms
  host.on_uplink_packet(a.id, pli.serialize());  // window opens at t=150ms
  session.run_for(sim_ms(50));                   // t=200ms
  host.tick();  // A admitted — the bundle is built and the window
                // re-anchors at this finalisation instant (t=200ms)
  EXPECT_EQ(host.snapshot_service().stats().bundles_built, 1u);
  // B's PLI lands at the very instant the bundle was finalised.
  host.on_uplink_packet(b.id, pli.serialize());
  session.run_for(sim_ms(100));  // t=300ms
  host.tick();                   // B served from the same bundle
  session.run_for(sim_ms(100));  // t=400ms
  host.tick();  // an open-anchored window (open + 250ms) would have
                // expired right here and dropped the bundle
  session.run_for(sim_ms(10));
  // C's PLI at t=410ms: 260ms past the window *open* but only 210ms past
  // the build — absorbed only if the window is finalisation-anchored.
  host.on_uplink_packet(c.id, pli.serialize());
  session.run_for(sim_ms(30));
  step();  // t=440ms: C still served from the t=200ms bundle

  const auto& sn = host.snapshot_service().stats();
  EXPECT_EQ(sn.windows_opened, 1u);
  EXPECT_EQ(sn.bundles_built, 1u) << "same-wave PLI forced a second encode";
  EXPECT_EQ(sn.plis_absorbed, 2u);
  EXPECT_EQ(host.stats().join_shared_refreshes, 3u);
  EXPECT_EQ(host.stats().join_fallback_refreshes, 0u);

  for (int i = 0; i < 4; ++i) step();
  session.run_for(sim_ms(500));
  const Image& truth = host.capturer().last_frame();
  for (auto* conn : {&a, &b, &c}) {
    EXPECT_EQ(diff_pixel_count(truth, replica_of(*conn, truth)), 0);
  }
}

TEST(LateJoinCohort, JoinerMidWindowInheritsBundleDeltaAndConverges) {
  SharingSession session(snap_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  // Churning content: the checkpoint goes stale between the two joins, so
  // the second joiner must converge through the bundle's delta region.
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 2));
  host.start();
  session.run_for(sim_ms(500));

  auto& a = session.add_udp_participant({}, clean_link());
  a.participant->join();
  session.run_for(sim_ms(150));  // inside the 300ms refresh window
  auto& b = session.add_udp_participant({}, clean_link());
  b.participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  const auto& sn = host.snapshot_service().stats();
  EXPECT_EQ(sn.bundles_built, 1u);  // B rode A's checkpoint
  EXPECT_EQ(host.stats().join_shared_refreshes, 2u);
  EXPECT_GT(sn.delta_rects, 0u);  // churn accumulated into the live bundle

  const Image& truth = host.capturer().last_frame();
  for (auto* conn : {&a, &b}) {
    EXPECT_EQ(diff_pixel_count(truth, replica_of(*conn, truth)), 0);
    EXPECT_EQ(conn->participant->stats().decode_errors, 0u);
  }
}

TEST(LateJoinCohort, SnapshotDisabledFallsBackToPerJoinerPath) {
  AppHostOptions opts = snap_host();
  opts.snapshot.enabled = false;  // the E19 naive baseline
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 96, 96}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(96, 96, 3));
  host.start();
  session.run_for(sim_ms(300));

  std::vector<SharingSession::Connection*> crowd;
  for (int i = 0; i < 3; ++i) {
    crowd.push_back(&session.add_udp_participant({}, clean_link()));
  }
  for (auto* c : crowd) c->participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  // Every joiner was admitted, none through the snapshot path.
  EXPECT_EQ(host.stats().join_admissions, 3u);
  EXPECT_EQ(host.stats().join_shared_refreshes, 0u);
  EXPECT_EQ(host.stats().join_fallback_refreshes, 0u);
  EXPECT_EQ(host.snapshot_service().stats().windows_opened, 0u);
  const Image& truth = host.capturer().last_frame();
  for (auto* c : crowd) {
    EXPECT_EQ(diff_pixel_count(truth, replica_of(*c, truth)), 0);
  }
}

TEST(LateJoinCohort, BundleBudgetExhaustionFallsBackToCohortEncode) {
  AppHostOptions opts = snap_host();
  opts.snapshot.max_bundles = 1;
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 96, 96}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(96, 96, 3));

  auto& a = session.add_udp_participant({}, clean_link());
  auto& b = session.add_udp_participant({}, clean_link());
  // Distinct operating points: B negotiates a different codec (§5.2.2), so
  // its refresh needs a second bundle — which the budget refuses.
  ASSERT_TRUE(host.set_participant_codec(b.id, ContentPt::kRle));
  host.start();
  session.run_for(sim_ms(300));
  a.participant->join();
  b.participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  EXPECT_EQ(host.stats().join_admissions, 2u);
  EXPECT_EQ(host.stats().join_shared_refreshes, 1u);
  EXPECT_EQ(host.stats().join_fallback_refreshes, 1u);  // §4.4 path, no bundle
  EXPECT_EQ(host.snapshot_service().stats().bundles_built, 1u);
  EXPECT_EQ(host.snapshot_service().stats().budget_rejections, 1u);

  // The fallback is a correctness no-op: both converge.
  const Image& truth = host.capturer().last_frame();
  for (auto* conn : {&a, &b}) {
    EXPECT_EQ(diff_pixel_count(truth, replica_of(*conn, truth)), 0);
  }
}

// §7 admission edge: a refresh demanded while the TCP backlog gate is
// closed stays pending (needs_full_refresh persists) and is admitted — via
// a fresh bundle — once the pipe drains.
TEST(LateJoinCohort, TcpRefreshDeferredByBacklogGateAdmittedAfterDrain) {
  AppHostOptions opts = snap_host(160, 120);
  opts.codec = ContentPt::kRaw;  // big payloads: one refresh floods the pipe
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 64, 64}, 1);
  host.capturer().attach(w,
                         std::make_unique<SlideshowApp>(64, 64, 2, 1'000'000));

  TcpLinkConfig link;
  link.down.bandwidth_bps = 1'000'000;  // raw refresh ≈ 77KB → ~6 ticks
  link.down.send_buffer_bytes = 1024 * 1024;
  auto& tcp = session.add_tcp_participant({}, link);

  auto step = [&] {
    host.tick();
    session.run_for(sim_ms(100));
  };

  step();  // admission tick: WMI + raw full refresh accepted into the buffer
  EXPECT_EQ(host.stats().join_admissions, 1u);
  EXPECT_EQ(host.stats().join_shared_refreshes, 1u);
  step();  // the refresh is still draining: the §7 gate is closed
  EXPECT_GT(host.stats().frames_skipped_backlog, 0u);

  // New refresh demand while the gate is closed — must NOT be served yet.
  const PictureLossIndication pli;
  host.on_uplink_packet(tcp.id, pli.serialize());
  step();
  EXPECT_EQ(host.stats().plis_received, 1u);
  EXPECT_EQ(host.stats().join_admissions, 1u) << "admitted through closed gate";

  // Drain; the deferred demand is admitted from a fresh checkpoint (the
  // first wave's window has long expired).
  for (int i = 0; i < 20; ++i) step();
  EXPECT_EQ(host.stats().join_admissions, 2u);
  EXPECT_EQ(host.stats().join_shared_refreshes, 2u);
  EXPECT_EQ(host.snapshot_service().stats().bundles_built, 2u);

  session.run_for(sim_sec(2));  // deliver the tail of the stream
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      tcp.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

// A relay crash racing a shared refresh: the in-flight bundle packets die
// with the node, and after the cold restart the subtree resyncs through the
// adoption-epoch §4.4 path — both viewers converge with no stale-epoch
// frame ever applied (decode_errors stays 0).
TEST(LateJoinCohort, RelayCrashDuringSharedRefreshResyncsCleanly) {
  SharingSession session(snap_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

  relay::RelayOptions ropts;
  ropts.report_interval_us = sim_ms(200);
  ropts.nack_flush_us = sim_ms(5);
  ropts.nack_holdoff_us = sim_ms(300);
  auto& r1 = session.add_relay(ropts);
  ParticipantOptions popts;
  popts.screen_width = 320;
  popts.screen_height = 240;
  auto& v1 = session.add_relay_viewer(r1, popts, {});
  auto& v2 = session.add_relay_viewer(r1, popts, {});

  host.start();
  session.run_for(sim_ms(300));
  v1.participant->join();  // leg PLI → coalesced upstream → shared refresh
  session.run_for(sim_ms(400));
  EXPECT_GE(host.stats().join_shared_refreshes, 1u);

  // The second joiner's refresh races the crash.
  v2.participant->join();
  session.run_for(sim_ms(30));
  session.crash_relay(r1);
  session.run_for(sim_sec(1));
  session.restart_relay(r1);
  session.run_for(sim_sec(3));  // adoption epoch: PLI pulls a fresh refresh
  host.stop();
  session.run_for(sim_sec(1));

  EXPECT_EQ(session.relay_crashes(), 1u);
  EXPECT_EQ(session.relay_restarts(), 1u);
  EXPECT_GE(host.stats().join_admissions, 2u);

  const Image& truth = host.capturer().last_frame();
  for (auto* v : {&v1, &v2}) {
    const Image replica = v->participant->screen().crop(
        {0, 0, truth.width(), truth.height()});
    EXPECT_EQ(diff_pixel_count(truth, replica), 0);
    EXPECT_EQ(v->participant->stats().decode_errors, 0u);
  }
}

}  // namespace
}  // namespace ads
