// Output-geometry integration (docs/TRANSCODE.md, E20): scaled and
// viewport-follow cohorts end to end — one encode per (geometry × rung)
// cohort per tick, scaled viewers converging to the box-filtered truth,
// HIP clicks mapping back to host pixels — plus the three regression
// sweeps of this change:
//  * S1: MoveRectangle replay is geometry-unsafe unless the move is exactly
//    divisible by the cohort scale factor (pre-fix the scaled replica
//    corrupted on misaligned scrolls);
//  * S2: the pointer overlay clamps at the right/bottom edge and is
//    re-sent after a host resolution change (pre-fix the overlay went
//    stale and out of bounds);
//  * S3: a joiner admitted in the same tick as a host geometry change must
//    never be served a stale-geometry refresh bundle.
#include <gtest/gtest.h>

#include <memory>

#include "capture/apps.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "rtp/rtcp.hpp"

namespace ads {
namespace {

AppHostOptions host_opts(std::int64_t w = 320, std::int64_t h = 240) {
  AppHostOptions opts;
  opts.screen_width = w;
  opts.screen_height = h;
  opts.frame_interval_us = sim_ms(100);
  opts.region_band_rows = 64;
  return opts;
}

UdpLinkConfig clean_link() {
  UdpLinkConfig link;
  link.down.delay_us = 2000;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 2000;
  return link;
}

constexpr transcode::OutputGeometry kQuarter{2, {}, false};
constexpr transcode::OutputGeometry kHalf{1, {}, false};

/// The participant's replica compared against the geometry-transformed
/// truth (what a scaled viewer should be rendering).
std::int64_t scaled_diff(const SharingSession::Connection& conn,
                         const Image& truth,
                         const transcode::OutputGeometry& geom) {
  const Image want = transcode::scale_frame(truth, geom);
  return diff_pixel_count(want,
                          conn.participant->screen().crop(want.bounds()));
}

TEST(TranscodeFlow, OneEncodePerGeometryRungCohortPerTick) {
  // Direct-host harness: five viewers across three device classes, all on
  // the same codec/MTU, admitted in one tick. The cohort planner must form
  // exactly one cohort per distinct geometry and encode each cohort's bands
  // once — extra encodes mean the geometry key leaked out of the plan.
  EventLoop loop;
  AppHostOptions opts = host_opts();
  AppHost host(loop, opts);
  const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(320, 240, 3, 1'000'000));

  std::vector<ParticipantId> ids;
  for (int i = 0; i < 5; ++i) {
    HostEndpoint ep;
    ep.kind = HostEndpoint::Kind::kUdp;
    ep.send_datagram = [](BytesView) { return true; };
    ids.push_back(host.add_participant(std::move(ep)));
  }
  ASSERT_TRUE(host.set_participant_geometry(ids[2], kHalf));
  ASSERT_TRUE(host.set_participant_geometry(ids[3], kQuarter));
  ASSERT_TRUE(host.set_participant_geometry(ids[4], kQuarter));
  // Everybody demands a refresh in the same instant (§4.3 PLI join).
  const PictureLossIndication pli;
  for (ParticipantId id : ids) host.on_uplink_packet(id, pli.serialize());

  host.tick();  // admission tick: every viewer gets its full refresh

  // Three cohorts: identity ×2, half ×1, quarter ×2 — with 64-row bands on
  // a 320×240 screen that is 4 + 2 + 1 = 7 unique band encodes, and the
  // cohort members shared 12 − 7 = 5 of their 12 band requests.
  const AppHost::Stats& s = host.stats();
  EXPECT_EQ(s.fanout_cohorts, 3u);
  EXPECT_EQ(s.fanout_encodes_unique, 7u);
  EXPECT_EQ(s.fanout_encodes_shared, 5u);
  // The scaler materialised each non-identity geometry exactly once.
  EXPECT_EQ(host.scaler().stats().frames_scaled, 2u);

  // A static tick adds no encodes and no scaled frames.
  host.tick();
  EXPECT_EQ(host.stats().fanout_encodes_unique, 7u);
  EXPECT_EQ(host.scaler().stats().frames_scaled, 2u);

  // Per-class byte accounting saw every class, and the quarter cohort paid
  // far less than the full-resolution one (E20's point) despite having the
  // same number of viewers.
  EXPECT_GT(s.bytes_sent_full, 0u);
  EXPECT_GT(s.bytes_sent_half, 0u);
  EXPECT_GT(s.bytes_sent_quarter, 0u);
  EXPECT_LT(s.bytes_sent_quarter, s.bytes_sent_full / 2);
}

TEST(TranscodeFlow, ScaledViewerConvergesToBoxFilteredTruth) {
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 256, 192}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(256, 192, 5));

  auto& full = session.add_udp_participant({}, clean_link());
  auto& quarter = session.add_udp_participant({}, clean_link());
  ASSERT_TRUE(host.set_participant_geometry(quarter.id, kQuarter));
  host.start();
  full.participant->join();
  quarter.participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  const Image& truth = host.capturer().last_frame();
  EXPECT_EQ(diff_pixel_count(
                truth, full.participant->screen().crop(truth.bounds())),
            0);
  EXPECT_EQ(scaled_diff(quarter, truth, kQuarter), 0);
  EXPECT_EQ(quarter.participant->stats().decode_errors, 0u);
}

TEST(TranscodeFlow, ViewportFollowTracksTheFocusedWindow) {
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 128, 96}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(128, 96, 7, 1'000'000));

  auto& conn = session.add_udp_participant({}, clean_link());
  ASSERT_TRUE(
      host.set_participant_geometry(conn.id, {0, {}, true}));  // follow
  host.start();
  conn.participant->join();
  session.run_for(sim_sec(1));

  // The stream is the window's rect, origin at the window's top-left.
  {
    const Image& truth = host.capturer().last_frame();
    const Image want = truth.crop({0, 0, 128, 96});
    EXPECT_EQ(diff_pixel_count(want,
                               conn.participant->screen().crop(want.bounds())),
              0);
  }

  // Moving the window re-anchors the viewport; the viewer re-converges on
  // the new rect without a manual refresh.
  host.wm().move(w, {40, 30});
  session.run_for(sim_sec(1));
  host.stop();
  session.run_for(sim_sec(1));
  EXPECT_GT(host.stats().viewport_moves, 0u);
  EXPECT_GT(host.stats().bytes_sent_viewport, 0u);
  const Image& truth = host.capturer().last_frame();
  const Image want = truth.crop({40, 30, 128, 96});
  EXPECT_EQ(diff_pixel_count(want,
                             conn.participant->screen().crop(want.bounds())),
            0);
}

TEST(TranscodeFlow, HipClickFromScaledViewerMapsToHostPixel) {
  // S4 e2e: the quarter-res viewer clicks output pixel (25, 25); the AH
  // must inject the centre of the 4×4 host block — (102, 102), inside the
  // shared window — not the raw output coordinate (25, 25), which the §4.1
  // legitimacy check would reject.
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({50, 50, 100, 100}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(100, 100, 3, 1'000'000));
  std::vector<HipMessage> received;
  host.set_input_sink(
      [&](ParticipantId, const HipMessage& msg) { received.push_back(msg); });

  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 1024 * 1024;
  auto& conn = session.add_tcp_participant({}, link);
  ASSERT_TRUE(host.set_participant_geometry(conn.id, kQuarter));
  host.start();
  session.run_for(sim_ms(300));
  conn.participant->request_floor();
  session.run_for(sim_ms(200));
  ASSERT_TRUE(conn.participant->has_floor());

  conn.participant->mouse_press(25, 25, MouseButton::kLeft);
  session.run_for(sim_ms(200));
  ASSERT_EQ(received.size(), 1u);
  const auto& press = std::get<MousePressed>(received[0]);
  EXPECT_EQ(press.left, 102u);
  EXPECT_EQ(press.top, 102u);
  EXPECT_EQ(host.stats().hip_events_mapped, 1u);
  EXPECT_EQ(host.stats().hip_events_rejected_coords, 0u);
}

TEST(TranscodeFlow, HipClickUnderViewportFollowMapsThroughWindowOffset) {
  // Follow mode at half resolution: the stream is the focused window's
  // 100×100 rect scaled to 50×50. A click on output (10, 10) is host
  // (50 + 21, 50 + 21) — block centre inside the window.
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({50, 50, 100, 100}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(100, 100, 3, 1'000'000));
  std::vector<HipMessage> received;
  host.set_input_sink(
      [&](ParticipantId, const HipMessage& msg) { received.push_back(msg); });

  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 1024 * 1024;
  auto& conn = session.add_tcp_participant({}, link);
  ASSERT_TRUE(host.set_participant_geometry(conn.id, {1, {}, true}));
  host.start();
  session.run_for(sim_ms(300));
  conn.participant->request_floor();
  session.run_for(sim_ms(200));
  ASSERT_TRUE(conn.participant->has_floor());

  conn.participant->mouse_move(10, 10);
  session.run_for(sim_ms(200));
  ASSERT_EQ(received.size(), 1u);
  const auto& move = std::get<MouseMoved>(received[0]);
  EXPECT_EQ(move.left, 71u);
  EXPECT_EQ(move.top, 71u);
  EXPECT_EQ(host.stats().hip_events_mapped, 1u);
}

// --- S1: MoveRectangle divisibility gate ---------------------------------

TEST(TranscodeFlow, MisalignedScrollFallsBackToDamageEncodeUnderScaling) {
  // 10-pixel scroll against a factor-4 rung: 10 % 4 != 0, so replaying the
  // move in output space lands between scaled pixels. Pre-fix the AH sent
  // the MoveRectangle anyway (offsets rounded) and the scaled replica
  // diverged permanently; the gate must fall back to damage encode and
  // still converge bit-exactly.
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 256, 192}, 1);
  host.capturer().attach(w, std::make_unique<DocumentApp>(256, 192, 9,
                                                          /*pixels_per_tick=*/10));

  auto& conn = session.add_udp_participant({}, clean_link());
  ASSERT_TRUE(host.set_participant_geometry(conn.id, kQuarter));
  host.start();
  conn.participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  EXPECT_GT(host.stats().move_rects_geometry_skipped, 0u);
  EXPECT_EQ(host.stats().move_rectangles_sent, 0u);  // only blocked viewers
  EXPECT_EQ(scaled_diff(conn, host.capturer().last_frame(), kQuarter), 0);
  EXPECT_EQ(conn.participant->stats().decode_errors, 0u);
}

TEST(TranscodeFlow, AlignedScrollKeepsMoveRectanglesUnderScaling) {
  // 16-pixel scroll divides evenly by factor 4: the move replays in output
  // space (4-pixel scroll) and the scaled replica still converges.
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 256, 192}, 1);
  host.capturer().attach(w, std::make_unique<DocumentApp>(256, 192, 9,
                                                          /*pixels_per_tick=*/16));

  auto& conn = session.add_udp_participant({}, clean_link());
  ASSERT_TRUE(host.set_participant_geometry(conn.id, kQuarter));
  host.start();
  conn.participant->join();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  EXPECT_GT(host.stats().move_rectangles_sent, 0u);
  EXPECT_EQ(scaled_diff(conn, host.capturer().last_frame(), kQuarter), 0);
  EXPECT_EQ(conn.participant->stats().decode_errors, 0u);
}

// --- S2: pointer overlay clamping and resize dirtiness -------------------

TEST(TranscodeFlow, PointerClampsAtEdgeAndSurvivesHostResize) {
  AppHostOptions opts = host_opts();
  opts.pointer_messages = true;
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(200, 150, 3, 1'000'000));

  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 2 * 1024 * 1024;
  auto& conn = session.add_tcp_participant({}, link);
  host.start();
  session.run_for(sim_ms(300));

  // Park the pointer past the bottom-right corner: the overlay must clamp
  // to the last on-screen pixel, not (width, height) one past it.
  host.set_pointer({5000, 5000});
  session.run_for(sim_ms(300));
  EXPECT_EQ(conn.participant->pointer(), (Point{319, 239}));

  // Shrink the host screen with no further set_pointer call: the overlay
  // is re-clamped into the new bounds and re-sent (pre-fix it stayed at
  // the stale (319, 239), outside the 160×120 frame).
  host.set_screen_size(160, 120);
  session.run_for(sim_ms(300));
  EXPECT_EQ(conn.participant->pointer(), (Point{159, 119}));
}

TEST(TranscodeFlow, PointerOverlayIsMappedIntoOutputSpace) {
  AppHostOptions opts = host_opts();
  opts.pointer_messages = true;
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(200, 150, 3, 1'000'000));

  auto& conn = session.add_udp_participant({}, clean_link());
  ASSERT_TRUE(host.set_participant_geometry(conn.id, kQuarter));
  host.start();
  conn.participant->join();
  session.run_for(sim_ms(300));

  host.set_pointer({50, 60});
  session.run_for(sim_ms(300));
  // The quarter-res viewer renders the overlay in its own coordinate
  // system: (50/4, 60/4).
  EXPECT_EQ(conn.participant->pointer(), (Point{12, 15}));
}

// --- S3: same-tick joiner vs host geometry change ------------------------

TEST(TranscodeFlow, JoinerInResizeTickNeverGetsStaleGeometryBundle) {
  AppHostOptions opts = host_opts();
  opts.snapshot.enabled = true;
  opts.snapshot.refresh_interval_us = sim_ms(300);
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 128, 96}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(128, 96, 2, 1'000'000));

  auto& a = session.add_udp_participant({}, clean_link());
  auto& b = session.add_udp_participant({}, clean_link());
  const PictureLossIndication pli;
  auto step = [&](SimTime dur = sim_ms(100)) {
    host.tick();
    session.run_for(dur);
  };

  step();  // initial paint
  host.on_uplink_packet(a.id, pli.serialize());
  step();  // A admitted: bundle 1 built against the 320×240 frame
  ASSERT_EQ(host.snapshot_service().stats().bundles_built, 1u);

  // B's demand and the host resolution change land in the same tick. The
  // hard invalidation must run before refresh distribution, so B is served
  // a bundle encoded from the 160×120 frame — pre-fix B received the live
  // 320×240 checkpoint and rendered a stale-geometry screen.
  host.on_uplink_packet(b.id, pli.serialize());
  host.set_screen_size(160, 120);
  step();
  for (int i = 0; i < 4; ++i) step();
  session.run_for(sim_ms(500));

  EXPECT_GE(host.snapshot_service().stats().bundles_built, 2u);
  const Image& truth = host.capturer().last_frame();
  ASSERT_EQ(truth.width(), 160);
  ASSERT_EQ(truth.height(), 120);
  for (auto* conn : {&a, &b}) {
    EXPECT_EQ(diff_pixel_count(
                  truth, conn->participant->screen().crop(truth.bounds())),
              0);
    EXPECT_EQ(conn->participant->stats().decode_errors, 0u);
  }
}

}  // namespace
}  // namespace ads
