// Edge-condition integration tests: scroll-driven MoveRectangle on the
// wire, participant removal, partial-write framing integrity, and bulk
// WindowManagerInfo messages.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions small_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

TcpLinkConfig fast_link() {
  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 4 * 1024 * 1024;
  return link;
}

TEST(SessionEdge, ScrollingContentUsesMoveRectangleOnTheWire) {
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId doc = host.wm().create({20, 20, 256, 200}, 1);
  host.capturer().attach(doc, std::make_unique<DocumentApp>(256, 200, 3, 16));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_sec(3));
  host.stop();
  session.run_for(sim_sec(1));

  EXPECT_GT(host.stats().move_rectangles_sent, 5u);
  EXPECT_GT(conn.participant->stats().move_rectangles, 5u);
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(SessionEdge, MoveRectangleDisabledFallsBackToRegions) {
  AppHostOptions opts = small_host();
  opts.use_move_rectangle = false;
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId doc = host.wm().create({20, 20, 256, 200}, 1);
  host.capturer().attach(doc, std::make_unique<DocumentApp>(256, 200, 3, 16));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  EXPECT_EQ(host.stats().move_rectangles_sent, 0u);
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(SessionEdge, RemovedParticipantStopsReceiving) {
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 128, 96}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_sec(1));
  const auto packets_before = conn.participant->stats().rtp_packets;
  EXPECT_GT(packets_before, 0u);

  host.remove_participant(conn.id);
  EXPECT_EQ(host.participant_count(), 0u);
  session.run_for(sim_ms(200));  // drain packets already in flight
  const auto packets_after_drain = conn.participant->stats().rtp_packets;
  session.run_for(sim_sec(1));
  EXPECT_EQ(conn.participant->stats().rtp_packets, packets_after_drain);
}

TEST(SessionEdge, TinyTcpBufferNeverTearsFrames) {
  // Byte-starved stream: constant partial writes exercise the stream_carry
  // path; RFC 4571 framing must never desynchronise.
  AppHostOptions opts = small_host();
  opts.tcp_backlog_limit = 1024;
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 128, 96}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  TcpLinkConfig slow;
  slow.down.bandwidth_bps = 300'000;       // very slow
  slow.down.send_buffer_bytes = 2 * 1024;  // very small
  auto& conn = session.add_tcp_participant({}, slow);
  host.start();
  session.run_for(sim_sec(10));
  host.stop();
  session.run_for(sim_sec(5));

  EXPECT_EQ(conn.participant->stats().decode_errors, 0u);
  EXPECT_GT(conn.participant->stats().region_updates, 0u);
}

TEST(SessionEdge, ManyWindowsWmiRoundTrip) {
  SharingSession session(small_host());
  AppHost& host = session.host();
  for (int i = 0; i < 40; ++i) {
    host.wm().create({(i % 8) * 40, (i / 8) * 40, 32, 32},
                     static_cast<GroupId>(1 + i % 3));
  }
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_sec(1));
  EXPECT_EQ(conn.participant->windows().size(), 40u);
  // Group ids survive the wire.
  for (const auto& [id, rec] : conn.participant->windows()) {
    EXPECT_GE(rec.group_id, 1);
    EXPECT_LE(rec.group_id, 3);
  }
}

TEST(SessionEdge, EmptyDesktopSessionIsStable) {
  SharingSession session(small_host());
  auto& conn = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_sec(2));
  // Nothing shared: the participant still gets WMI (empty) + the blank
  // refresh and no errors.
  EXPECT_EQ(conn.participant->windows().size(), 0u);
  EXPECT_EQ(conn.participant->stats().decode_errors, 0u);
}

}  // namespace
}  // namespace ads
