// End-to-end integration over the simulated TCP transport (§4.4): AH
// captures a scripted application, ships WindowManagerInfo + RegionUpdates
// over RFC 4571-framed RTP, and the participant's replica converges to the
// AH's exported view.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions small_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

TcpLinkConfig fast_link() {
  TcpLinkConfig link;
  link.down.bandwidth_bps = 100'000'000;
  link.down.delay_us = 1000;
  link.down.send_buffer_bytes = 4 * 1024 * 1024;
  link.up.bandwidth_bps = 10'000'000;
  link.up.delay_us = 1000;
  return link;
}

TEST(SessionTcp, NewParticipantGetsWmiAndFullRefresh) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({20, 30, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(128, 96, 3));

  auto& conn = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_ms(500));

  // §4.4: WMI + full image arrive right after connection establishment.
  EXPECT_GE(conn.participant->stats().wmi_received, 1u);
  EXPECT_GE(conn.participant->stats().region_updates, 1u);
  ASSERT_EQ(conn.participant->windows().size(), 1u);
  EXPECT_EQ(conn.participant->windows().begin()->second.rect(),
            (Rect{20, 30, 128, 96}));
}

TEST(SessionTcp, ReplicaConvergesToSharedView) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({20, 30, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(128, 96, 3));

  auto& conn = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_sec(2));
  session.host().stop();
  session.run_for(sim_sec(1));  // drain in flight

  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(SessionTcp, ActiveContentKeepsConverging) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& conn = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_sec(3));
  session.host().stop();
  session.run_for(sim_sec(1));

  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  EXPECT_GT(conn.participant->stats().region_updates, 5u);
}

TEST(SessionTcp, WindowMoveTriggersNewWmi) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 64, 64}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(64, 64, 3));
  auto& conn = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_ms(500));
  const auto wmi_before = conn.participant->stats().wmi_received;

  session.host().wm().move(w, {100, 100});
  session.run_for(sim_ms(500));
  EXPECT_GT(conn.participant->stats().wmi_received, wmi_before);
  EXPECT_EQ(conn.participant->windows().begin()->second.rect(),
            (Rect{100, 100, 64, 64}));
}

TEST(SessionTcp, WindowCloseRemovesRecordAtParticipant) {
  SharingSession session(small_host());
  const WindowId w1 = session.host().wm().create({0, 0, 64, 64}, 1);
  const WindowId w2 = session.host().wm().create({100, 0, 64, 64}, 1);
  session.host().capturer().attach(w1, std::make_unique<SlideshowApp>(64, 64, 3));
  session.host().capturer().attach(w2, std::make_unique<SlideshowApp>(64, 64, 4));
  auto& conn = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_ms(500));
  EXPECT_EQ(conn.participant->windows().size(), 2u);

  session.host().wm().close(w2);
  session.run_for(sim_ms(500));
  // "MUST close this window after receiving a WindowManagerInfo message
  // which does not contain this WindowID."
  EXPECT_EQ(conn.participant->windows().size(), 1u);
  EXPECT_EQ(conn.participant->windows().begin()->first, w1);
}

TEST(SessionTcp, SlowLinkSkipsFramesInsteadOfLagging) {
  // §7: backlog-aware AH drops stale frames for a slow TCP participant.
  AppHostOptions host_opts = small_host();
  host_opts.tcp_backlog_limit = 2048;
  host_opts.codec = ContentPt::kRaw;  // bulky updates to saturate the pipe
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 200, 150}, 1);
  session.host().capturer().attach(w, std::make_unique<VideoApp>(200, 150, 7));

  TcpLinkConfig slow = fast_link();
  slow.down.bandwidth_bps = 2'000'000;  // well under raw video rate
  slow.down.send_buffer_bytes = 256 * 1024;
  session.add_tcp_participant({}, slow);
  session.host().start();
  session.run_for(sim_sec(3));

  EXPECT_GT(session.host().stats().frames_skipped_backlog, 0u);
}

TEST(SessionTcp, MultipleParticipantsEachConverge) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({10, 10, 100, 80}, 1);
  session.host().capturer().attach(w, std::make_unique<PaintApp>(100, 80, 9));

  auto& c1 = session.add_tcp_participant({}, fast_link());
  auto& c2 = session.add_tcp_participant({}, fast_link());
  auto& c3 = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_sec(2));
  session.host().stop();
  session.run_for(sim_sec(1));

  const Image& truth = session.host().capturer().last_frame();
  for (auto* conn : {&c1, &c2, &c3}) {
    const Image replica =
        conn->participant->screen().crop({0, 0, truth.width(), truth.height()});
    EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  }
}

TEST(SessionTcp, PliForcesFullRefreshOverTcp) {
  // §5.3.1: "Both TCP and UDP participants MAY transmit this message."
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 64, 64}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(64, 64, 3));
  auto& conn = session.add_tcp_participant({}, fast_link());
  session.host().start();
  session.run_for(sim_ms(500));
  const auto plis_before = session.host().stats().plis_received;

  conn.participant->request_refresh();
  session.run_for(sim_ms(500));
  EXPECT_GT(session.host().stats().plis_received, plis_before);
}

}  // namespace
}  // namespace ads
