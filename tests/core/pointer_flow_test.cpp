// MousePointerInfo end-to-end (draft §5.2.4): explicit pointer messages,
// icon persistence, and the late-joiner pointer requirement.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions host_opts() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  opts.pointer_messages = true;
  return opts;
}

TcpLinkConfig fast_link() {
  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 2 * 1024 * 1024;
  return link;
}

TEST(PointerFlow, PositionUpdatesReachParticipant) {
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(200, 150, 3));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_ms(300));

  host.set_pointer({123, 45});
  session.run_for(sim_ms(300));
  EXPECT_EQ(conn.participant->pointer(), (Point{123, 45}));
  EXPECT_GT(conn.participant->stats().pointer_updates, 0u);
}

TEST(PointerFlow, IconTransmittedOnceAndStored) {
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(200, 150, 3));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_ms(300));

  Image icon(6, 9, Pixel{255, 0, 0, 255});
  host.set_pointer({10, 10}, &icon);
  session.run_for(sim_ms(300));
  // "The participant MUST store and use this image until a new image
  // arrives from the AH."
  EXPECT_EQ(diff_pixel_count(conn.participant->pointer_icon(), icon), 0);

  // Subsequent position-only updates keep the stored icon.
  host.set_pointer({50, 60});
  session.run_for(sim_ms(300));
  EXPECT_EQ(conn.participant->pointer(), (Point{50, 60}));
  EXPECT_EQ(diff_pixel_count(conn.participant->pointer_icon(), icon), 0);
}

TEST(PointerFlow, LateJoinerLearnsPointerStateViaRefresh) {
  // §5.2.4: the AH "MUST inform the late joiners about the current position
  // and image of mouse pointer."
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(200, 150, 3));
  host.start();

  Image icon(5, 7, Pixel{0, 200, 0, 255});
  host.set_pointer({77, 88}, &icon);
  session.run_for(sim_sec(1));  // pointer state long since transmitted

  UdpLinkConfig link;
  link.down.delay_us = 5000;
  link.up.delay_us = 5000;
  auto& late = session.add_udp_participant({}, link);
  late.participant->join();
  session.run_for(sim_ms(500));

  EXPECT_EQ(late.participant->pointer(), (Point{77, 88}));
  EXPECT_EQ(diff_pixel_count(late.participant->pointer_icon(), icon), 0);
}

TEST(PointerFlow, DisabledPointerModelSendsNothing) {
  // §4.2: "Some AHs may transmit pointer images inside the RegionUpdate
  // messages, so they may not need MousePointerInfo message."
  AppHostOptions opts = host_opts();
  opts.pointer_messages = false;
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(200, 150, 3));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_ms(300));
  host.set_pointer({40, 40});
  session.run_for(sim_ms(300));
  EXPECT_EQ(conn.participant->stats().pointer_updates, 0u);
  EXPECT_EQ(host.stats().pointer_msgs_sent, 0u);
}

TEST(PointerFlow, BacklogSkippedParticipantStillGetsPointerUpdate) {
  // Regression: pointer dirtiness used to be session-global and cleared
  // after one distribute pass, so a participant held back by the §7
  // backlog gate during the pointer move never received it.
  EventLoop loop;
  AppHost host(loop, host_opts());
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(200, 150, 3));

  ParticipantOptions popts;
  popts.transport = ParticipantOptions::Transport::kTcp;
  Participant part(loop, popts);

  std::size_t scripted_backlog = 0;
  HostEndpoint ep;
  ep.kind = HostEndpoint::Kind::kTcp;
  ep.write_stream = [&part](BytesView data) {
    part.on_stream_bytes(data);
    return data.size();
  };
  ep.backlog = [&scripted_backlog] { return scripted_backlog; };
  host.add_participant(std::move(ep));

  host.tick();  // late-join WMI + full refresh + initial pointer

  // The §7 gate holds the participant back while the pointer moves.
  scripted_backlog = host.options().tcp_backlog_limit + 1;
  host.set_pointer({55, 66});
  host.tick();
  host.tick();
  ASSERT_NE(part.pointer(), (Point{55, 66}));  // still skipped

  // Backlog drains: the catch-up frame must deliver the pointer update.
  scripted_backlog = 0;
  host.tick();
  EXPECT_EQ(part.pointer(), (Point{55, 66}));
}

TEST(PointerFlow, PointerMovesDoNotDisturbScreenConvergence) {
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(200, 150, 5));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  for (int i = 0; i < 20; ++i) {
    host.set_pointer({i * 10, i * 7});
    session.run_for(sim_ms(100));
  }
  host.stop();
  session.run_for(sim_sec(1));
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

}  // namespace
}  // namespace ads
