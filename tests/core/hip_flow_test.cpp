// HIP + BFCP integration: participants acquire the floor via BFCP, their
// input events travel the uplink, and the AH enforces both the floor gate
// (Appendix A) and the §4.1 coordinate legitimacy check.
#include <gtest/gtest.h>

#include "core/session.hpp"

namespace ads {
namespace {

struct HipFlowTest : ::testing::Test {
  AppHostOptions host_opts() {
    AppHostOptions opts;
    opts.screen_width = 320;
    opts.screen_height = 240;
    opts.frame_interval_us = sim_ms(100);
    return opts;
  }

  void SetUp() override {
    session = std::make_unique<SharingSession>(host_opts());
    window = session->host().wm().create({50, 50, 100, 100}, 1);
    session->host().capturer().attach(window,
                                      std::make_unique<SlideshowApp>(100, 100, 3));
    session->host().set_input_sink(
        [this](ParticipantId from, const HipMessage& msg) {
          received.emplace_back(from, msg);
        });
  }

  SharingSession::Connection& connect() {
    TcpLinkConfig link;
    link.down.bandwidth_bps = 50'000'000;
    link.down.send_buffer_bytes = 1024 * 1024;
    auto& conn = session->add_tcp_participant({}, link);
    session->host().start();
    session->run_for(sim_ms(300));
    return conn;
  }

  std::unique_ptr<SharingSession> session;
  WindowId window = 0;
  std::vector<std::pair<ParticipantId, HipMessage>> received;
};

TEST_F(HipFlowTest, FloorHolderEventsReachInputSink) {
  auto& conn = connect();
  conn.participant->request_floor();
  session->run_for(sim_ms(200));
  EXPECT_TRUE(conn.participant->has_floor());
  EXPECT_EQ(conn.participant->hid_status(), HidStatus::kAllAllowed);

  conn.participant->mouse_move(60, 60);
  conn.participant->mouse_press(60, 60, MouseButton::kLeft);
  conn.participant->key_press(vk::kA);
  conn.participant->key_type("hi");
  session->run_for(sim_ms(200));

  ASSERT_EQ(received.size(), 4u);
  EXPECT_EQ(received[0].first, conn.id);
  EXPECT_TRUE(std::holds_alternative<MouseMoved>(received[0].second));
  EXPECT_TRUE(std::holds_alternative<MousePressed>(received[1].second));
  EXPECT_TRUE(std::holds_alternative<KeyPressed>(received[2].second));
  EXPECT_EQ(std::get<KeyTyped>(received[3].second).utf8, "hi");
  EXPECT_EQ(session->host().stats().hip_events_accepted, 4u);
}

TEST_F(HipFlowTest, EventsWithoutFloorRejected) {
  auto& conn = connect();
  conn.participant->mouse_move(60, 60);
  conn.participant->key_press(vk::kA);
  session->run_for(sim_ms(200));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(session->host().stats().hip_events_rejected_floor, 2u);
}

TEST_F(HipFlowTest, CoordinatesOutsideSharedWindowsRejected) {
  auto& conn = connect();
  conn.participant->request_floor();
  session->run_for(sim_ms(200));

  conn.participant->mouse_move(10, 10);  // outside the 50,50..150,150 window
  session->run_for(sim_ms(200));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(session->host().stats().hip_events_rejected_coords, 1u);

  conn.participant->mouse_move(100, 100);  // inside
  session->run_for(sim_ms(200));
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(HipFlowTest, KeyboardEventsBypassCoordinateCheck) {
  // Key events carry no coordinates; only the floor gate applies.
  auto& conn = connect();
  conn.participant->request_floor();
  session->run_for(sim_ms(200));
  conn.participant->key_press(vk::kF1);
  session->run_for(sim_ms(200));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(std::get<KeyPressed>(received[0].second).key_code, vk::kF1);
}

TEST_F(HipFlowTest, SecondRequesterQueuedThenGranted) {
  auto& first = connect();
  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 1024 * 1024;
  auto& second = session->add_tcp_participant({}, link);
  session->run_for(sim_ms(300));

  first.participant->request_floor();
  session->run_for(sim_ms(200));
  second.participant->request_floor();
  session->run_for(sim_ms(200));
  EXPECT_TRUE(first.participant->has_floor());
  EXPECT_FALSE(second.participant->has_floor());
  EXPECT_TRUE(second.participant->floor_pending());

  first.participant->release_floor();
  session->run_for(sim_ms(200));
  EXPECT_FALSE(first.participant->has_floor());
  EXPECT_TRUE(second.participant->has_floor());
}

TEST_F(HipFlowTest, HidStatusChangeGatesEventClasses) {
  auto& conn = connect();
  conn.participant->request_floor();
  session->run_for(sim_ms(200));

  // AH blocks the mouse (e.g. shared app lost focus) but allows keyboard.
  session->host().floor().set_hid_status(HidStatus::kKeyboardAllowed);
  conn.participant->mouse_move(60, 60);
  conn.participant->key_press(vk::from_ascii('b'));
  session->run_for(sim_ms(200));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<KeyPressed>(received[0].second));
  EXPECT_EQ(session->host().stats().hip_events_rejected_floor, 1u);
}

TEST_F(HipFlowTest, HipWindowIdTracksFocusWindow) {
  auto& conn = connect();
  conn.participant->request_floor();
  session->run_for(sim_ms(300));
  conn.participant->mouse_move(60, 60);  // inside window
  session->run_for(sim_ms(200));
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(hip_window_id(received.back().second), window);
}

}  // namespace
}  // namespace ads
