// AH session recording end-to-end (docs/LATEJOIN.md §5): with
// snapshot.record_path set, the AH streams ADSREC01 checkpoints + updates
// to disk while the session runs, and a SessionReplayer reconstructs the
// final framebuffer bit-exactly — the disk analogue of the late-join
// checkpoint semantics, and the substrate for deterministic replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "capture/apps.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "snapshot/record.hpp"

namespace ads {
namespace {

TEST(SessionRecord, RecordingReplaysToFinalFrameBitExactly) {
  const std::string path = testing::TempDir() + "ads_session_record.adsrec";
  AppHostOptions opts;
  opts.screen_width = 160;
  opts.screen_height = 120;
  opts.frame_interval_us = sim_ms(100);
  // Recording is independent of the snapshot master switch: record_path
  // alone activates it (checkpoint cadence = refresh_interval_us).
  opts.snapshot.record_path = path;
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 3));

  host.start();
  // Churn off the 500ms checkpoint cadence (ticks start at t=100ms, so
  // checkpoints land at 100/600/1100/1600ms): the WMI/pointer changes at
  // t=1150ms are recorded as standalone delta records at the t=1200ms tick
  // rather than being subsumed by a checkpoint landing the same tick.
  session.run_for(sim_ms(1'150));
  host.set_pointer(Point{10, 12});
  host.wm().create({20, 20, 40, 30}, 2);  // mid-run WMI churn
  session.run_for(sim_ms(850));
  host.stop();
  session.run_for(sim_ms(200));

  snapshot::SessionRecorder* rec = host.recorder();
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->ok());
  // 2s at the default 500ms cadence: the initial checkpoint plus periodic
  // ones, with update records in between.
  EXPECT_GE(rec->stats().checkpoints, 3u);
  EXPECT_GT(rec->stats().region_updates, 0u);
  EXPECT_GE(rec->stats().wmi_records, 1u);
  EXPECT_GE(rec->stats().pointer_records, 1u);
  rec->finish();

  snapshot::SessionReplayer rep(path);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.replay());
  // Seek semantics: only the tail from the last checkpoint is re-applied.
  EXPECT_EQ(rep.stats().checkpoints_seen, rec->stats().checkpoints);
  EXPECT_EQ(rep.stats().decode_errors, 0u);
  EXPECT_EQ(diff_pixel_count(rep.frame(), host.capturer().last_frame()), 0);
  EXPECT_EQ(rep.windows().records.size(), 2u);
  EXPECT_EQ(rep.pointer(), (Point{10, 12}));
  std::remove(path.c_str());
}

TEST(SessionRecord, NoRecordPathMeansNoRecorder) {
  AppHostOptions opts;
  opts.screen_width = 64;
  opts.screen_height = 64;
  SharingSession session(opts);
  EXPECT_EQ(session.host().recorder(), nullptr);
}

}  // namespace
}  // namespace ads
