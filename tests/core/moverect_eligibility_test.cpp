// §5.2.2 MoveRectangle eligibility: "Before moving image of the source
// region, it is important that the contents of the source region are
// up-to-date" — a participant that missed an update overlapping the scroll
// source must NOT receive the MoveRectangle, or it replays the move from
// stale pixels and its replica diverges.
//
// Regression scenario (failed under the old area-comparison predicate):
// a lagging participant's only stale region is re-damaged by the very tick
// that scrolls, so its pending area equals this tick's damage area and it
// was misclassified as caught-up.
#include <gtest/gtest.h>

#include <memory>

#include "core/app_host.hpp"
#include "core/participant.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

constexpr std::int64_t kW = 200;
constexpr std::int64_t kH = 192;  // six 32-row damage tiles

/// Row-unique stripe so vertical displacement is unambiguous to the scroll
/// detector.
Pixel row_pixel(std::int64_t y, std::uint8_t base) {
  return Pixel{static_cast<std::uint8_t>(base + y * 3),
               static_cast<std::uint8_t>(y * 7), base, 255};
}

/// Externally scripted content: the test sets `phase` before each AH tick.
///  phase 0 — static.
///  phase 1 — new content appears in the bottom tile (rows 160..191).
///  phase 2 — everything scrolls up 40 px; the exposed strip (rows
///            152..191) is repainted. The bottom tile is thus re-damaged
///            on the same tick that produces the MoveRectangle, while the
///            scroll source still covers it.
class ScriptedScroller : public AppPainter {
 public:
  explicit ScriptedScroller(const int* phase)
      : AppPainter(kW, kH, Pixel{0, 0, 0, 255}), phase_(phase) {
    for (std::int64_t y = 0; y < kH; ++y) {
      content_.fill_rect({0, y, kW, 1}, row_pixel(y, 40));
    }
  }

  void tick(std::uint64_t) override {
    if (*phase_ == 1) {
      for (std::int64_t y = 160; y < 192; ++y) {
        content_.fill_rect({0, y, kW, 1}, row_pixel(y, 160));
      }
    } else if (*phase_ == 2) {
      content_.move_rect({0, 40, kW, kH - 40}, {0, 0});
      for (std::int64_t y = 152; y < 192; ++y) {
        content_.fill_rect({0, y, kW, 1}, row_pixel(y, 220));
      }
    }
  }

  std::string_view name() const override { return "scripted-scroller"; }

 private:
  const int* phase_;
};

struct TcpViewer {
  explicit TcpViewer(EventLoop& loop)
      : participant(loop, [] {
          ParticipantOptions o;
          o.transport = ParticipantOptions::Transport::kTcp;
          o.screen_width = kW;
          o.screen_height = kH;
          return o;
        }()) {}

  Participant participant;
  std::size_t backlog = 0;

  HostEndpoint endpoint() {
    HostEndpoint ep;
    ep.kind = HostEndpoint::Kind::kTcp;
    ep.write_stream = [this](BytesView data) {
      participant.on_stream_bytes(data);
      return data.size();
    };
    ep.backlog = [this] { return backlog; };
    return ep;
  }
};

TEST(MoveRectEligibility, LaggingParticipantWithRedamagedRegionGetsNoStaleMove) {
  EventLoop loop;
  AppHostOptions opts;
  opts.screen_width = kW;
  opts.screen_height = kH;
  opts.pointer_messages = false;
  opts.use_move_rectangle = true;
  AppHost host(loop, opts);

  int phase = 0;
  const WindowId w = host.wm().create({0, 0, kW, kH});
  host.capturer().attach(w, std::make_unique<ScriptedScroller>(&phase));

  TcpViewer fast(loop);
  TcpViewer lag(loop);
  host.add_participant(fast.endpoint());
  host.add_participant(lag.endpoint());

  // Converge both replicas on the initial content.
  host.tick();
  host.tick();
  const Image& truth0 = host.capturer().last_frame();
  ASSERT_EQ(diff_pixel_count(lag.participant.screen().crop(truth0.bounds()),
                             truth0),
            0);

  // The bottom tile changes while the §7 gate holds `lag` back.
  phase = 1;
  lag.backlog = opts.tcp_backlog_limit + 1;
  host.tick();
  const std::uint64_t skips = host.stats().frames_skipped_backlog;
  ASSERT_GE(skips, 1u);

  // The scroll tick: `lag` has drained, its stale tile is re-damaged, and
  // the scroll source covers that stale tile.
  phase = 2;
  lag.backlog = 0;
  host.tick();
  ASSERT_GE(host.stats().move_rectangles_sent, 1u);  // the scroll was found
  // Only the caught-up participant may replay the move.
  EXPECT_EQ(lag.participant.stats().move_rectangles, 0u);
  EXPECT_GE(fast.participant.stats().move_rectangles, 1u);

  // Settle and compare: a stale replay would leave rows 120..127 (the red
  // strip's new position outside the re-damaged tiles) permanently wrong.
  phase = 0;
  host.tick();
  host.tick();
  const Image& truth = host.capturer().last_frame();
  EXPECT_EQ(diff_pixel_count(fast.participant.screen().crop(truth.bounds()),
                             truth),
            0);
  EXPECT_EQ(diff_pixel_count(lag.participant.screen().crop(truth.bounds()),
                             truth),
            0);
}

}  // namespace
}  // namespace ads
