// §4.3 UDP rate control + RTCP SR/RR integration tests.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions host_opts(std::uint64_t udp_rate_bps) {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  opts.udp_rate_bps = udp_rate_bps;
  opts.udp_burst_bytes = 16 * 1024;
  return opts;
}

UdpLinkConfig narrow_link() {
  UdpLinkConfig link;
  link.down.delay_us = 10'000;
  link.down.bandwidth_bps = 2'000'000;
  link.down.queue_bytes = 32 * 1024;  // small interface queue
  link.up.delay_us = 10'000;
  return link;
}

TEST(RateControl, UncontrolledSenderOverflowsTheQueue) {
  // Without §4.3 rate control a video stream exceeding the link rate
  // tail-drops at the interface queue.
  SharingSession session(host_opts(0));
  AppHost& host = session.host();
  const WindowId movie = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(movie, std::make_unique<VideoApp>(256, 192, 7));
  auto& conn = session.add_udp_participant({}, narrow_link());
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(5));

  EXPECT_GT(conn.down_udp->stats().queue_dropped, 0u);
  EXPECT_EQ(host.stats().frames_skipped_rate, 0u);
}

TEST(RateControl, BucketPacesTheStreamBelowLinkRate) {
  SharingSession session(host_opts(1'500'000));  // under the 2 Mbit/s link
  AppHost& host = session.host();
  const WindowId movie = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(movie, std::make_unique<VideoApp>(256, 192, 7));
  auto& conn = session.add_udp_participant({}, narrow_link());
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(5));

  EXPECT_GT(host.stats().frames_skipped_rate, 0u);
  // A paced sender keeps the interface queue essentially drop-free (the
  // uncontrolled run above drops hundreds of datagrams per second).
  EXPECT_LT(conn.down_udp->stats().queue_dropped, 100u);
  // Observed rate stays near the bucket rate (bits over 5 s).
  const double observed_bps = static_cast<double>(host.stats().bytes_sent) * 8 / 5.0;
  EXPECT_LT(observed_bps, 1'500'000 * 1.25);
  EXPECT_GT(observed_bps, 1'500'000 * 0.5);  // and actually uses the budget
}

TEST(RateControl, PacedStreamStillConvergesWhenContentPauses) {
  SharingSession session(host_opts(1'500'000));
  AppHost& host = session.host();
  const WindowId deck = host.wm().create({16, 16, 256, 192}, 1);
  // Slideshow with an early final transition, then static content.
  host.capturer().attach(deck, std::make_unique<SlideshowApp>(256, 192, 3, 10));
  auto& conn = session.add_udp_participant({}, narrow_link());
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(6));
  host.stop();
  session.run_for(sim_sec(1));

  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(RtcpReports, SrAndRrFlowBothWays) {
  AppHostOptions opts = host_opts(0);
  opts.sr_interval_us = sim_ms(500);
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId term = host.wm().create({16, 16, 128, 96}, 1);
  host.capturer().attach(term, std::make_unique<TerminalApp>(128, 96, 5));

  UdpLinkConfig link;
  link.down.delay_us = 10'000;
  link.up.delay_us = 10'000;
  ParticipantOptions popts;
  popts.rr_interval_us = sim_ms(500);
  auto& conn = session.add_udp_participant(popts, link);
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(5));

  EXPECT_GT(host.stats().srs_sent, 5u);
  EXPECT_GT(conn.participant->stats().srs_received, 3u);
  EXPECT_GT(conn.participant->stats().rrs_sent, 3u);
  EXPECT_GT(host.stats().rrs_received, 3u);
  const ReportBlock* rr = host.last_receiver_report(conn.id);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->cumulative_lost, 0u);
  EXPECT_EQ(rr->fraction_lost, 0);
}

TEST(RtcpReports, RrReflectsLinkLoss) {
  AppHostOptions opts = host_opts(0);
  opts.retransmissions = false;  // keep losses visible in the stats
  SharingSession session(opts);
  AppHost& host = session.host();
  const WindowId term = host.wm().create({16, 16, 192, 160}, 1);
  host.capturer().attach(term, std::make_unique<VideoApp>(192, 160, 5));

  UdpLinkConfig link;
  link.down.delay_us = 10'000;
  link.down.loss = 0.25;
  link.down.seed = 321;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 10'000;
  ParticipantOptions popts;
  popts.send_nacks = false;
  popts.rr_interval_us = sim_ms(500);
  // Keep recovery quiet so the loss numbers accumulate for the test.
  popts.loss_recovery_delay_us = 60'000'000;
  auto& conn = session.add_udp_participant(popts, link);
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(5));

  const ReportBlock* rr = host.last_receiver_report(conn.id);
  ASSERT_NE(rr, nullptr);
  EXPECT_GT(rr->cumulative_lost, 0u);
  // Fraction lost is per interval; with 25% loss it should be visibly
  // non-zero in most intervals.
  EXPECT_GT(conn.participant->receiver().cumulative_lost(), 0u);
}

TEST(RtcpReports, JitterMeasuredOnJitteryLink) {
  SharingSession session(host_opts(0));
  AppHost& host = session.host();
  const WindowId term = host.wm().create({16, 16, 192, 160}, 1);
  host.capturer().attach(term, std::make_unique<VideoApp>(192, 160, 5));

  UdpLinkConfig link;
  link.down.delay_us = 10'000;
  link.down.jitter_us = 40'000;
  link.down.seed = 77;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 10'000;
  auto& conn = session.add_udp_participant({}, link);
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(5));

  // 40 ms uniform jitter: the RFC 3550 filter settles well above the
  // clean-link value of ~0 ticks.
  EXPECT_GT(conn.participant->receiver().jitter(), 100u);
}

}  // namespace
}  // namespace ads
