// EncodedRegionCache pointer-invalidation contract: find() hands out a
// pointer that dies at the next insert()/clear(). The shared fan-out's
// cohort loop interleaves lookups with inserts, so it must use the
// copy-returning accessor (find_copy) — these tests pin the contract with
// the generation counter and exercise the copy path under ASan.
#include "core/encoded_region_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ads {
namespace {

EncodedRegionKey key(std::uint64_t hash, std::uint32_t w = 16,
                     std::uint32_t h = 16) {
  return EncodedRegionKey{hash, 1, 0, w, h};
}

Bytes payload_of(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

TEST(EncodedRegionCache, GenerationTracksEveryInvalidation) {
  EncodedRegionCache cache(1024);
  const std::uint64_t g0 = cache.generation();

  cache.insert(key(1), payload_of(8, 0xAA));
  const std::uint64_t g1 = cache.generation();
  EXPECT_GT(g1, g0);

  // Lookups promote but never invalidate.
  EXPECT_NE(cache.find(key(1)), nullptr);
  Bytes copy;
  EXPECT_TRUE(cache.find_copy(key(1), copy));
  EXPECT_EQ(cache.generation(), g1);

  // Replacing an existing entry invalidates outstanding pointers.
  cache.insert(key(1), payload_of(8, 0xBB));
  const std::uint64_t g2 = cache.generation();
  EXPECT_GT(g2, g1);

  cache.clear();
  EXPECT_GT(cache.generation(), g2);
  // Clearing an already-empty cache invalidates nothing.
  const std::uint64_t g3 = cache.generation();
  cache.clear();
  EXPECT_EQ(cache.generation(), g3);
}

TEST(EncodedRegionCache, FindPointerDiesAtNextInsertButCopySurvives) {
  EncodedRegionCache cache(32);  // tiny budget: inserts evict aggressively
  const Bytes original = payload_of(24, 0x11);
  cache.insert(key(1), original);

  const Bytes* hit = cache.find(key(1));
  ASSERT_NE(hit, nullptr);
  const std::uint64_t gen_at_hit = cache.generation();
  Bytes safe;
  ASSERT_TRUE(cache.find_copy(key(1), safe));

  // This insert evicts key(1) to honour the 32-byte budget — the `hit`
  // pointer is now dangling and must not be dereferenced (ASan would
  // fire); the generation counter records exactly that invalidation.
  cache.insert(key(2), payload_of(24, 0x22));
  EXPECT_NE(cache.generation(), gen_at_hit);
  EXPECT_EQ(cache.find(key(1)), nullptr);  // evicted
  EXPECT_GE(cache.evictions(), 1u);

  // The copy taken through find_copy is untouched by the eviction.
  EXPECT_EQ(safe, original);
}

TEST(EncodedRegionCache, CohortLoopPatternInterleavesLookupsAndInserts) {
  // The shared fan-out's access shape: per cohort, look bands up and
  // insert fresh encodes while earlier hits are still in use. With copies
  // the results stay valid across every eviction; under ASan any internal
  // aliasing of evicted storage would be caught here.
  EncodedRegionCache cache(64);  // holds at most four 16-byte payloads
  std::vector<Bytes> held;
  for (std::uint64_t i = 0; i < 32; ++i) {
    cache.insert(key(i), payload_of(16, static_cast<std::uint8_t>(i)));
    Bytes out;
    ASSERT_TRUE(cache.find_copy(key(i), out));
    held.push_back(std::move(out));
  }
  for (std::uint64_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i], payload_of(16, static_cast<std::uint8_t>(i)));
  }
  EXPECT_LE(cache.bytes(), 64u);
  EXPECT_GE(cache.evictions(), 28u);
}

}  // namespace
}  // namespace ads
