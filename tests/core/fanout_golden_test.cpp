// Golden A/B for the shared-encode broadcast fan-out: a 50-tick scripted
// session is run twice — once through the cohort path (shared_fanout on)
// and once through the per-participant reference path — and every
// participant's wire bytes must match exactly. The script deliberately
// exercises the paths where the two implementations could diverge: mixed
// transports, a cohort-splitting codec override, §7 backlog skips, partial
// TCP writes, §4.3 rate-limited leftovers, pointer moves and icon changes,
// a mid-session PLI full refresh, window-manager changes, and
// MoveRectangle-producing scroll workloads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "capture/apps.hpp"
#include "core/app_host.hpp"
#include "rtp/rtcp.hpp"

namespace ads {
namespace {

constexpr int kTicks = 50;
constexpr std::size_t kViewers = 5;

struct GoldenResult {
  std::vector<Bytes> wires = std::vector<Bytes>(kViewers);
  AppHost::Stats stats;
};

GoldenResult run_golden(bool shared_fanout) {
  EventLoop loop;
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.shared_fanout = shared_fanout;
  // Refill below one MTU per tick: UDP viewers hit §4.3 rate skips and
  // carry packetise leftovers across ticks.
  opts.udp_rate_bps = 80'000;
  opts.udp_burst_bytes = 16 * 1024;
  opts.region_band_rows = 64;
  opts.frame_interval_us = sim_ms(100);
  opts.sr_interval_us = sim_ms(500);
  AppHost host(loop, opts);

  const WindowId w1 = host.wm().create({0, 0, 200, 160}, 1);
  const WindowId w2 = host.wm().create({60, 40, 240, 180}, 1);
  host.capturer().attach(w1, std::make_unique<TerminalApp>(200, 160, 5));
  host.capturer().attach(w2, std::make_unique<DocumentApp>(240, 180, 9));

  GoldenResult out;
  int tick_no = 0;

  auto capture_stream = [&out](std::size_t i, BytesView data,
                               std::size_t accepted) {
    out.wires[i].insert(out.wires[i].end(), data.begin(),
                        data.begin() + static_cast<std::ptrdiff_t>(accepted));
  };

  // Viewer 0: healthy TCP.
  HostEndpoint ep0;
  ep0.kind = HostEndpoint::Kind::kTcp;
  ep0.write_stream = [&](BytesView d) {
    capture_stream(0, d, d.size());
    return d.size();
  };
  ep0.backlog = [] { return std::size_t{0}; };
  host.add_participant(std::move(ep0));

  // Viewer 1: flaky TCP — §7 backlog spike on ticks 10..15, partial writes
  // (stream-carry path) on ticks 20..23.
  HostEndpoint ep1;
  ep1.kind = HostEndpoint::Kind::kTcp;
  ep1.write_stream = [&](BytesView d) {
    const std::size_t allow =
        (tick_no >= 20 && tick_no < 24) ? std::min<std::size_t>(d.size(), 96)
                                        : d.size();
    capture_stream(1, d, allow);
    return allow;
  };
  ep1.backlog = [&tick_no] {
    return (tick_no >= 10 && tick_no < 16) ? std::size_t{1} << 20
                                           : std::size_t{0};
  };
  host.add_participant(std::move(ep1));

  // Viewers 2..4: UDP. Viewer 3 negotiates DCT — its own cohort.
  std::vector<ParticipantId> udp_ids;
  for (std::size_t i = 2; i < kViewers; ++i) {
    HostEndpoint ep;
    ep.kind = HostEndpoint::Kind::kUdp;
    ep.send_datagram = [&, i](BytesView d) {
      capture_stream(i, d, d.size());
      return true;
    };
    udp_ids.push_back(host.add_participant(std::move(ep)));
  }
  host.set_participant_codec(udp_ids[1], ContentPt::kDct);

  const Image icon(6, 9, Pixel{255, 0, 0, 255});
  for (tick_no = 0; tick_no < kTicks; ++tick_no) {
    if (tick_no == 2) {
      // UDP viewers late-join via PLI (§4.3).
      for (ParticipantId id : udp_ids) {
        PictureLossIndication pli;
        host.on_uplink_packet(id, pli.serialize());
      }
    }
    if (tick_no == 7) host.set_pointer({50, 60});
    if (tick_no == 20) {
      PictureLossIndication pli;  // mid-session refresh for one UDP viewer
      host.on_uplink_packet(udp_ids[0], pli.serialize());
    }
    if (tick_no == 23) host.set_pointer({80, 90}, &icon);
    if (tick_no == 31) host.set_pointer({10, 10});
    if (tick_no == 35) host.wm().move(w2, {40, 30});  // WMI resend
    host.tick();
    loop.run_until(loop.now() + opts.frame_interval_us);
  }

  out.stats = host.stats();
  return out;
}

TEST(FanoutGolden, SharedFanoutIsByteIdenticalPerParticipant) {
  const GoldenResult shared = run_golden(true);
  const GoldenResult legacy = run_golden(false);

  for (std::size_t i = 0; i < kViewers; ++i) {
    ASSERT_FALSE(shared.wires[i].empty()) << "viewer " << i << " got nothing";
    ASSERT_EQ(shared.wires[i].size(), legacy.wires[i].size())
        << "viewer " << i << " wire length diverged";
    EXPECT_TRUE(shared.wires[i] == legacy.wires[i])
        << "viewer " << i << " wire bytes diverged";
  }

  // The script really exercised the interesting paths…
  EXPECT_GT(legacy.stats.move_rectangles_sent, 0u);
  EXPECT_GT(legacy.stats.frames_skipped_backlog, 0u);
  EXPECT_GT(legacy.stats.frames_skipped_rate, 0u);
  EXPECT_GT(legacy.stats.pointer_msgs_sent, 0u);
  EXPECT_GT(legacy.stats.plis_received, 0u);
  // …and the messaging totals agree between the two paths.
  EXPECT_EQ(shared.stats.region_updates_sent, legacy.stats.region_updates_sent);
  EXPECT_EQ(shared.stats.move_rectangles_sent, legacy.stats.move_rectangles_sent);
  EXPECT_EQ(shared.stats.rtp_packets_sent, legacy.stats.rtp_packets_sent);
  EXPECT_EQ(shared.stats.bytes_sent, legacy.stats.bytes_sent);

  // The cohort path actually shared work: multiple same-operating-point
  // viewers per tick, so unique encodes stay within cohorts × bands and
  // sharing saved real encode requests.
  EXPECT_GT(shared.stats.fanout_cohorts, 0u);
  EXPECT_GT(shared.stats.fanout_encodes_shared, 0u);
  EXPECT_EQ(legacy.stats.fanout_cohorts, 0u);

  // Zero-copy invariant: the shared path serialises each cohort band's
  // fragment stream at most once — every member's packets are views into
  // that one buffer — while the legacy reference builds a stream per
  // participant (and never touches the cohort counter). Streams are built
  // lazily, so a band encoded for a cohort whose members all ran out of
  // §4.3 tokens before reaching it is never serialised at all — hence <=
  // rather than ==.
  EXPECT_GT(shared.stats.band_streams_built, 0u);
  EXPECT_LE(shared.stats.band_streams_built, shared.stats.fanout_encodes_unique);
  EXPECT_EQ(legacy.stats.band_streams_built, 0u);
  EXPECT_GT(legacy.stats.payload_bytes_copied, shared.stats.payload_bytes_copied);
  // Every data packet was assembled as a header-plus-view on both paths.
  EXPECT_EQ(shared.stats.packets_built, shared.stats.rtp_packets_sent);
  EXPECT_EQ(legacy.stats.packets_built, legacy.stats.rtp_packets_sent);
}

}  // namespace
}  // namespace ads
