// Closing the loop of Figure 1: a participant's typed input travels HIP →
// AH validation → injection into the shared application → screen update →
// RegionUpdate → back to the participant's replica. "Their mouse and
// keyboard events are delivered and regenerated at the AH." (§2)
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

struct InputLoopTest : ::testing::Test {
  void SetUp() override {
    AppHostOptions opts;
    opts.screen_width = 320;
    opts.screen_height = 240;
    opts.frame_interval_us = sim_ms(100);
    session = std::make_unique<SharingSession>(opts);
    AppHost& host = session->host();
    window = host.wm().create({20, 20, 256, 192}, 1);
    // chars_per_tick = 0: the terminal only shows injected input.
    auto app = std::make_unique<TerminalApp>(256, 192, 1, /*chars_per_tick=*/0);
    terminal = app.get();
    host.capturer().attach(window, std::move(app));

    // Route accepted HIP events into the terminal — the "regenerate at the
    // OS" step.
    host.set_input_sink([this](ParticipantId, const HipMessage& msg) {
      if (const auto* typed = std::get_if<KeyTyped>(&msg)) {
        terminal->inject_utf8(typed->utf8);
      } else if (const auto* key = std::get_if<KeyPressed>(&msg)) {
        terminal->inject_key(key->key_code);
      }
    });

    TcpLinkConfig link;
    link.down.bandwidth_bps = 50'000'000;
    link.down.send_buffer_bytes = 2 * 1024 * 1024;
    conn = &session->add_tcp_participant({}, link);
    host.start();
    session->run_for(sim_ms(300));
    conn->participant->request_floor();
    session->run_for(sim_ms(300));
    ASSERT_TRUE(conn->participant->has_floor());
  }

  std::unique_ptr<SharingSession> session;
  WindowId window = 0;
  TerminalApp* terminal = nullptr;
  SharingSession::Connection* conn = nullptr;
};

TEST_F(InputLoopTest, TypedTextAppearsOnParticipantScreen) {
  const Image before = conn->participant->screen().crop({20, 20, 256, 192});

  conn->participant->key_type("hello from the participant");
  session->run_for(sim_sec(1));
  session->host().stop();
  session->run_for(sim_sec(1));

  EXPECT_EQ(terminal->injected_chars(), 26u);
  // The participant's own replica now shows what it typed.
  const Image after = conn->participant->screen().crop({20, 20, 256, 192});
  EXPECT_GT(diff_pixel_count(before, after), 0);
  // And it matches the AH's exported view exactly.
  const Image& truth = session->host().capturer().last_frame();
  const Image replica =
      conn->participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST_F(InputLoopTest, EnterAndBackspaceKeysHandled) {
  conn->participant->key_type("abc");
  conn->participant->key_press(vk::kBackSpace);
  conn->participant->key_press(vk::kEnter);
  conn->participant->key_type("x");
  session->run_for(sim_sec(1));
  // 3 typed + backspace + newline + 1 typed = 6 injected input units.
  EXPECT_EQ(terminal->injected_chars(), 6u);
}

TEST_F(InputLoopTest, NonHolderInputNeverReachesTheApp) {
  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 2 * 1024 * 1024;
  auto& second = session->add_tcp_participant({}, link);
  session->run_for(sim_ms(300));

  const auto before = terminal->injected_chars();
  second.participant->key_type("intruder");
  session->run_for(sim_ms(500));
  EXPECT_EQ(terminal->injected_chars(), before);
}

}  // namespace
}  // namespace ads
