// End-to-end integration over the simulated UDP transport (§4.3): PLI join
// handshake, loss repair via Generic NACK retransmissions, PLI fallback,
// and convergence under lossy conditions.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions small_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

UdpLinkConfig clean_link() {
  UdpLinkConfig link;
  link.down.delay_us = 2000;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 2000;
  return link;
}

TEST(SessionUdp, JoinPliTriggersWmiAndFullRefresh) {
  // §4.3: "participants using UDP send an RCTP-based feedback message,
  // Picture Loss Indication (PLI), after joining the session. The AH
  // prepares and transmits the windows' state information and image of the
  // whole shared region after receiving a PLI message."
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({10, 10, 64, 64}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(64, 64, 3));
  session.host().start();
  session.run_for(sim_ms(300));  // stream already running when we connect
  auto& conn = session.add_udp_participant({}, clean_link());
  session.run_for(sim_ms(300));
  // Incremental traffic is fanned out regardless, but no full-screen image
  // has been delivered yet (the refresh arrives as full-width bands; sum
  // their area to detect it).
  auto full_width_area = [&](const std::vector<Participant::DeliveryRecord>& ds) {
    std::int64_t area = 0;
    for (const auto& d : ds) {
      if (d.region.width == 320) area += d.region.area();
    }
    return area;
  };
  EXPECT_LT(full_width_area(conn.participant->drain_deliveries()), 320 * 240);

  conn.participant->join();
  session.run_for(sim_ms(500));
  EXPECT_GE(conn.participant->stats().wmi_received, 1u);
  EXPECT_GE(full_width_area(conn.participant->drain_deliveries()), 320 * 240);
}

TEST(SessionUdp, CleanLinkConverges) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({10, 10, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(128, 96, 3));
  auto& conn = session.add_udp_participant({}, clean_link());
  conn.participant->join();
  session.host().start();
  session.run_for(sim_sec(2));
  session.host().stop();
  session.run_for(sim_sec(1));

  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(SessionUdp, LossRepairedByNackRetransmission) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  UdpLinkConfig lossy = clean_link();
  lossy.down.loss = 0.10;
  lossy.down.seed = 77;
  ParticipantOptions popts;
  popts.send_nacks = true;
  auto& conn = session.add_udp_participant(popts, lossy);
  conn.participant->join();
  session.host().start();
  session.run_for(sim_sec(5));
  session.host().stop();
  session.run_for(sim_sec(2));

  EXPECT_GT(conn.participant->stats().nacks_sent, 0u);
  EXPECT_GT(session.host().stats().retransmissions_sent, 0u);
  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(SessionUdp, WithoutNacksPliRecoversEventually) {
  AppHostOptions host_opts = small_host();
  host_opts.retransmissions = false;
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  UdpLinkConfig lossy = clean_link();
  lossy.down.loss = 0.20;
  lossy.down.seed = 99;
  ParticipantOptions popts;
  popts.send_nacks = false;
  popts.loss_recovery_delay_us = 150'000;
  auto& conn = session.add_udp_participant(popts, lossy);
  conn.participant->join();
  session.host().start();
  // Lossy phase: gaps appear and (with NACKs off) must be repaired by PLI.
  session.run_for(sim_sec(4));
  EXPECT_GT(conn.participant->stats().plis_sent, 1u);  // join + recoveries
  EXPECT_GT(conn.participant->stats().gaps_skipped, 0u);

  // Heal the link so the final PLI refresh lands, then verify convergence.
  conn.down_udp->set_loss(0.0);
  session.run_for(sim_sec(1));
  session.host().stop();
  session.run_for(sim_sec(1));

  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
}

TEST(SessionUdp, ReorderingToleratedViaReorderBuffer) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  UdpLinkConfig jittery = clean_link();
  jittery.down.jitter_us = 30'000;  // heavy reordering
  jittery.down.seed = 55;
  auto& conn = session.add_udp_participant({}, jittery);
  conn.participant->join();
  session.host().start();
  session.run_for(sim_sec(3));
  session.host().stop();
  session.run_for(sim_sec(1));

  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  EXPECT_EQ(conn.participant->stats().decode_errors, 0u);
}

TEST(SessionUdp, LateJoinerCatchesUpViaPli) {
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({20, 20, 100, 80}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(100, 80, 11, 1000));
  session.host().start();

  // Let the session run before the second participant joins.
  auto& early = session.add_udp_participant({}, clean_link());
  early.participant->join();
  session.run_for(sim_sec(2));

  auto& late = session.add_udp_participant({}, clean_link());
  session.run_for(sim_ms(300));
  EXPECT_EQ(late.participant->stats().region_updates, 0u);
  late.participant->join();
  session.run_for(sim_sec(1));
  session.host().stop();
  session.run_for(sim_sec(1));

  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      late.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  EXPECT_EQ(late.participant->windows().size(), 1u);
}

TEST(SessionUdp, MixedTcpAndUdpParticipantsInOneSession) {
  // §4.2: "The AH can share an application to TCP participants, UDP
  // participants ... in the same sharing session."
  SharingSession session(small_host());
  const WindowId w = session.host().wm().create({0, 0, 96, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(96, 96, 3));

  auto& udp = session.add_udp_participant({}, clean_link());
  TcpLinkConfig tcp_link;
  tcp_link.down.bandwidth_bps = 50'000'000;
  tcp_link.down.send_buffer_bytes = 1024 * 1024;
  auto& tcp = session.add_tcp_participant({}, tcp_link);
  udp.participant->join();
  session.host().start();
  session.run_for(sim_sec(2));
  session.host().stop();
  session.run_for(sim_sec(1));

  const Image& truth = session.host().capturer().last_frame();
  for (auto* conn : {&udp, &tcp}) {
    const Image replica =
        conn->participant->screen().crop({0, 0, truth.width(), truth.height()});
    EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  }
}

}  // namespace
}  // namespace ads
