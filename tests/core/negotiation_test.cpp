// Media-type negotiation (§5.2.2: "they should negotiate supported media
// types during the session establishment") and window-image persistence
// across resize/relocation (§5.2.1).
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions host_opts() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

TcpLinkConfig fast_link() {
  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 4 * 1024 * 1024;
  return link;
}

TEST(Negotiation, PerParticipantCodecOverride) {
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<VideoApp>(200, 150, 9));

  auto& lossless = session.add_tcp_participant({}, fast_link());
  auto& lossy = session.add_tcp_participant({}, fast_link());
  ASSERT_TRUE(host.set_participant_codec(lossy.id, ContentPt::kDct));

  host.start();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  const Image& truth = host.capturer().last_frame();
  const Image exact =
      lossless.participant->screen().crop({0, 0, truth.width(), truth.height()});
  const Image approx =
      lossy.participant->screen().crop({0, 0, truth.width(), truth.height()});
  // PNG participant matches exactly; the DCT one is only approximate but
  // still a faithful picture.
  EXPECT_EQ(diff_pixel_count(truth, exact), 0);
  EXPECT_GT(diff_pixel_count(truth, approx), 0);
  EXPECT_GT(psnr(truth, approx), 20.0);
}

TEST(Negotiation, UnknownIdOrCodecRejected) {
  SharingSession session(host_opts());
  auto& conn = session.add_tcp_participant({}, fast_link());
  EXPECT_FALSE(session.host().set_participant_codec(9999, ContentPt::kPng));
  EXPECT_FALSE(
      session.host().set_participant_codec(conn.id, static_cast<ContentPt>(77)));
  EXPECT_TRUE(session.host().set_participant_codec(conn.id, ContentPt::kRle));
}

TEST(Negotiation, SdpOfferAnswerDrivesTransportChoice) {
  SharingSession session(host_opts());
  const SessionDescription offer = session.host().sdp_offer();

  AnswerChoice choice;
  choice.transport = AnswerChoice::Transport::kUdp;
  auto answer = build_sharing_answer(offer, choice);
  ASSERT_TRUE(answer.ok());

  // The answering participant accepted the UDP remoting stream: its m-line
  // has a port, the TCP one is zeroed.
  auto parsed = parse_sharing_offer(offer);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->retransmissions);
  EXPECT_NE(answer->media[1].port, 0);
  EXPECT_EQ(answer->media[2].port, 0);
}

TEST(WindowImagePersistence, ResizeAndRelocationKeepPixels) {
  // §5.2.1: "The participant MUST keep the existing window image after a
  // resize and relocation."
  SharingSession session(host_opts());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({20, 20, 120, 90}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(120, 90, 3, /*t=*/10000));
  auto& conn = session.add_tcp_participant({}, fast_link());
  host.start();
  session.run_for(sim_ms(500));

  // Snapshot what the participant shows for the window area.
  const Image before = conn.participant->screen().crop({20, 20, 120, 90});
  ASSERT_GT(diff_pixel_count(before, Image(120, 90, kBlack)), 0);

  // Relocate the window on the AH. The participant's *window record* moves
  // immediately with the WindowManagerInfo; the replica pixels at the old
  // location persist until RegionUpdates repaint (and since the AH also
  // repaints the new location, the participant converges there).
  host.wm().move(w, {160, 120});
  session.run_for(sim_ms(50));  // WMI likely applied; repaint may lag
  ASSERT_EQ(conn.participant->windows().size(), 1u);

  session.run_for(sim_sec(1));
  host.stop();
  session.run_for(sim_sec(1));
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  // Content is the same slideshow slide, now at the new position.
  const Image after = conn.participant->screen().crop({160, 120, 120, 90});
  EXPECT_EQ(diff_pixel_count(before, after), 0);
}

}  // namespace
}  // namespace ads
