// Multicast sharing integration (draft §4.2/§4.3): one AH stream fanned out
// to several members, NACK repair via the group, per-member floor control,
// and NACK-storm randomisation.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

AppHostOptions small_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

UdpChannelOptions member_link(std::uint64_t seed, double loss = 0.0) {
  UdpChannelOptions opts;
  opts.delay_us = 15'000;
  opts.bandwidth_bps = 50'000'000;
  opts.loss = loss;
  opts.seed = seed;
  return opts;
}

TEST(MulticastSession, AllMembersConverge) {
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(160, 120, 3));

  auto& mc = session.add_multicast_session();
  auto& m1 = session.add_multicast_member(mc, {}, member_link(21));
  auto& m2 = session.add_multicast_member(mc, {}, member_link(22));
  auto& m3 = session.add_multicast_member(mc, {}, member_link(23));
  m1.participant->join();

  host.start();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  const Image& truth = host.capturer().last_frame();
  for (auto* m : {&m1, &m2, &m3}) {
    const Image replica =
        m->participant->screen().crop({0, 0, truth.width(), truth.height()});
    EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  }
}

TEST(MulticastSession, EncodeOnceSendOnce) {
  // The AH treats the whole group as one participant: region updates are
  // encoded and transmitted once regardless of member count.
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& mc = session.add_multicast_session();
  for (int i = 0; i < 8; ++i) session.add_multicast_member(mc, {}, member_link(30 + i));
  mc.members.front()->participant->join();
  host.start();
  session.run_for(sim_sec(2));

  EXPECT_EQ(host.participant_count(), 1u);  // one stream state for the group
  // Each member saw roughly what the group carried — not 8x.
  const auto group_sent = mc.group->datagrams_sent();
  for (const auto& m : mc.members) {
    EXPECT_LE(m->participant->stats().rtp_packets, group_sent);
  }
}

TEST(MulticastSession, PliFromOneMemberRefreshesGroup) {
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(160, 120, 7, 1000));

  auto& mc = session.add_multicast_session();
  auto& early = session.add_multicast_member(mc, {}, member_link(41));
  early.participant->join();
  host.start();
  session.run_for(sim_sec(2));

  // A late member joins; its PLI causes a group-wide refresh that also
  // reaches (and is harmless for) the early member.
  auto& late = session.add_multicast_member(mc, {}, member_link(42));
  late.participant->join();
  session.run_for(sim_sec(1));
  host.stop();
  session.run_for(sim_sec(1));

  const Image& truth = host.capturer().last_frame();
  for (auto* m : {&early, &late}) {
    const Image replica =
        m->participant->screen().crop({0, 0, truth.width(), truth.height()});
    EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  }
}

TEST(MulticastSession, NackRepairHealsLossyMember) {
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& mc = session.add_multicast_session();
  auto& clean = session.add_multicast_member(mc, {}, member_link(51));
  auto& lossy = session.add_multicast_member(mc, {}, member_link(52, 0.10));
  clean.participant->join();
  host.start();
  session.run_for(sim_sec(4));
  mc.group->member(1).set_loss(0.0);
  session.run_for(sim_sec(1));
  host.stop();
  session.run_for(sim_sec(1));

  EXPECT_GT(lossy.participant->stats().nacks_sent, 0u);
  EXPECT_GT(host.stats().retransmissions_sent, 0u);
  const Image& truth = host.capturer().last_frame();
  for (auto* m : {&clean, &lossy}) {
    const Image replica =
        m->participant->screen().crop({0, 0, truth.width(), truth.height()});
    EXPECT_EQ(diff_pixel_count(truth, replica), 0);
  }
}

TEST(MulticastSession, NackJitterDesynchronisesMembers) {
  // §5.3.2 storm avoidance: members with shared loss should not all NACK at
  // the same instant. With per-member random delay, the first NACK's repair
  // (multicast to the group) suppresses most other members' NACKs.
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& mc = session.add_multicast_session();
  std::vector<SharingSession::MulticastMember*> members;
  for (int i = 0; i < 6; ++i) {
    ParticipantOptions popts;
    popts.seed = 100 + static_cast<std::uint64_t>(i);
    popts.nack_delay_us = 10'000;
    // nack_jitter_us defaults to 30 ms for multicast members (session).
    members.push_back(
        &session.add_multicast_member(mc, popts, member_link(60 + i, 0.10)));
  }
  members.front()->participant->join();
  host.start();
  session.run_for(sim_sec(4));

  std::uint64_t total_nacks = 0;
  for (auto* m : members) total_nacks += m->participant->stats().nacks_sent;
  // All members share the same upstream loss pattern per member link is
  // independent, but repairs are multicast: total NACK volume must stay far
  // below members * per-member-loss events.
  EXPECT_GT(total_nacks, 0u);
  EXPECT_LT(total_nacks, 6u * host.stats().retransmissions_sent + 200);
}

TEST(MulticastSession, FloorControlPerMemberOverMulticast) {
  SharingSession session(small_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({10, 10, 200, 150}, 1);
  host.capturer().attach(w, std::make_unique<SlideshowApp>(200, 150, 3));
  int accepted = 0;
  host.set_input_sink([&](ParticipantId, const HipMessage&) { ++accepted; });

  auto& mc = session.add_multicast_session();
  auto& m1 = session.add_multicast_member(mc, {}, member_link(71));
  auto& m2 = session.add_multicast_member(mc, {}, member_link(72));
  m1.participant->join();
  host.start();
  session.run_for(sim_ms(500));

  m1.participant->request_floor();
  session.run_for(sim_ms(300));
  EXPECT_TRUE(m1.participant->has_floor());
  EXPECT_FALSE(m2.participant->has_floor());  // status filtered by user_id

  m1.participant->mouse_move(50, 50);
  m2.participant->mouse_move(50, 50);  // no floor: rejected
  session.run_for(sim_ms(300));
  EXPECT_EQ(accepted, 1);
  EXPECT_EQ(host.stats().hip_events_rejected_floor, 1u);
}

}  // namespace
}  // namespace ads
