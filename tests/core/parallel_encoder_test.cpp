// ParallelEncoder: deterministic ordered output across thread counts, the
// encoded-region cache (hits, LRU byte bound), and the end-to-end golden
// guarantee — an AppHost configured serial (encode_threads=0) and one
// configured parallel (encode_threads=4) emit byte-identical wire streams.
#include "core/parallel_encoder.hpp"

#include <gtest/gtest.h>

#include "capture/apps.hpp"
#include "core/app_host.hpp"

namespace ads {
namespace {

Image workload_frame(std::string_view name, std::int64_t w, std::int64_t h) {
  auto app = make_app(name, w, h, 99);
  for (int t = 0; t < 12; ++t) app->tick(static_cast<std::uint64_t>(t));
  return app->content();
}

std::vector<Rect> band_split(const Rect& r, std::int64_t band_rows) {
  std::vector<Rect> bands;
  for (std::int64_t top = r.top; top < r.bottom(); top += band_rows) {
    bands.push_back(Rect{r.left, top, r.width, std::min(band_rows, r.bottom() - top)});
  }
  return bands;
}

TEST(ParallelEncoder, ParallelOutputMatchesSerialPerBand) {
  const Image frame = workload_frame("terminal", 320, 256);
  const auto bands = band_split(frame.bounds(), 32);
  const CodecRegistry registry = CodecRegistry::with_defaults();

  ParallelEncoder serial(registry, {.threads = 0, .cache_bytes = 0});
  ParallelEncoder parallel(registry, {.threads = 4, .cache_bytes = 0});
  for (const ContentPt pt :
       {ContentPt::kRaw, ContentPt::kRle, ContentPt::kPng, ContentPt::kDct}) {
    const auto a = serial.encode_regions(frame, bands, pt);
    const auto b = parallel.encode_regions(frame, bands, pt);
    ASSERT_EQ(a.size(), bands.size());
    ASSERT_EQ(b.size(), bands.size());
    for (std::size_t i = 0; i < bands.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "band " << i << " pt " << static_cast<int>(pt);
      EXPECT_FALSE(a[i].empty());
    }
  }
  EXPECT_EQ(parallel.threads(), 4u);
  EXPECT_EQ(serial.threads(), 0u);
}

TEST(ParallelEncoder, RepeatedCallsReuseScratchAndStayIdentical) {
  const Image frame = workload_frame("slideshow", 256, 192);
  const auto bands = band_split(frame.bounds(), 64);
  const CodecRegistry registry = CodecRegistry::with_defaults();
  ParallelEncoder enc(registry, {.threads = 2, .cache_bytes = 0});
  const auto first = enc.encode_regions(frame, bands, ContentPt::kPng);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(enc.encode_regions(frame, bands, ContentPt::kPng), first);
  }
}

TEST(ParallelEncoder, CacheServesRepeatedContent) {
  const Image frame = workload_frame("slideshow", 256, 192);
  const auto bands = band_split(frame.bounds(), 32);
  const CodecRegistry registry = CodecRegistry::with_defaults();

  ParallelEncoder enc(registry, {.threads = 2, .cache_bytes = 4 * 1024 * 1024});
  const auto cold = enc.encode_regions(frame, bands, ContentPt::kPng);
  EXPECT_EQ(enc.stats().cache_hits, 0u);
  EXPECT_EQ(enc.stats().cache_misses, bands.size());

  // The PLI-refresh shape: identical content re-requested in full.
  const auto warm = enc.encode_regions(frame, bands, ContentPt::kPng);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(enc.stats().cache_hits, bands.size());
  EXPECT_EQ(enc.stats().bands_encoded, bands.size());  // nothing re-encoded
}

TEST(ParallelEncoder, CacheDistinguishesCodecs) {
  const Image frame = workload_frame("terminal", 128, 64);
  const auto bands = band_split(frame.bounds(), 64);
  const CodecRegistry registry = CodecRegistry::with_defaults();
  ParallelEncoder enc(registry, {.threads = 0, .cache_bytes = 1 << 20});
  const auto png = enc.encode_regions(frame, bands, ContentPt::kPng);
  const auto rle = enc.encode_regions(frame, bands, ContentPt::kRle);
  EXPECT_NE(png, rle);  // same pixels, different codec: must not alias
  EXPECT_EQ(enc.encode_regions(frame, bands, ContentPt::kRle), rle);
}

TEST(ParallelEncoder, CacheDistinguishesQualityRungs) {
  const Image frame = workload_frame("video", 128, 64);
  const auto bands = band_split(frame.bounds(), 64);
  const CodecRegistry registry = CodecRegistry::with_defaults();
  ParallelEncoder enc(registry, {.threads = 0, .cache_bytes = 1 << 20});
  const auto q90 = enc.encode_regions(frame, bands, ContentPt::kDct,
                                      EncodeParams{.dct_quality = 90});
  const auto q10 = enc.encode_regions(frame, bands, ContentPt::kDct,
                                      EncodeParams{.dct_quality = 10});
  EXPECT_NE(q90, q10);  // same pixels, different rung: must not alias
  EXPECT_EQ(enc.stats().cache_hits, 0u);  // second rung was a fresh encode
  // Re-requesting either rung is a cache hit with that rung's bytes.
  EXPECT_EQ(enc.encode_regions(frame, bands, ContentPt::kDct,
                               EncodeParams{.dct_quality = 90}),
            q90);
  EXPECT_EQ(enc.stats().cache_hits, bands.size());
}

TEST(EncodedRegionCache, LruEvictionHonoursByteBudget) {
  EncodedRegionCache cache(1000);
  for (std::uint64_t i = 0; i < 10; ++i) {
    cache.insert({i, 98, 0, 16, 16}, Bytes(300));
  }
  EXPECT_LE(cache.bytes(), 1000u);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_GT(cache.evictions(), 0u);
  // Oldest keys are gone, newest survive.
  EXPECT_EQ(cache.find({0, 98, 0, 16, 16}), nullptr);
  EXPECT_NE(cache.find({9, 98, 0, 16, 16}), nullptr);
}

TEST(EncodedRegionCache, FindPromotesToMostRecentlyUsed) {
  EncodedRegionCache cache(900);
  cache.insert({1, 98, 0, 16, 16}, Bytes(300));
  cache.insert({2, 98, 0, 16, 16}, Bytes(300));
  cache.insert({3, 98, 0, 16, 16}, Bytes(300));
  ASSERT_NE(cache.find({1, 98, 0, 16, 16}), nullptr);  // touch 1: now MRU
  cache.insert({4, 98, 0, 16, 16}, Bytes(300));        // evicts LRU = 2
  EXPECT_NE(cache.find({1, 98, 0, 16, 16}), nullptr);
  EXPECT_EQ(cache.find({2, 98, 0, 16, 16}), nullptr);
}

TEST(EncodedRegionCache, OversizedPayloadIsNotCached) {
  EncodedRegionCache cache(100);
  cache.insert({1, 98, 0, 16, 16}, Bytes(101));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.find({1, 98, 0, 16, 16}), nullptr);
}

TEST(EncodedRegionCache, ZeroBudgetDisables) {
  EncodedRegionCache cache(0);
  cache.insert({1, 98, 0, 16, 16}, Bytes{1, 2, 3});
  EXPECT_EQ(cache.entries(), 0u);
}

// ---------------------------------------------------------------------------
// Golden test: serial vs parallel AH runs produce byte-identical wire
// streams over 50 ticks of live damage traffic.

struct WireCapture {
  Bytes stream;  ///< all datagrams, concatenated in send order
  std::uint64_t datagrams = 0;
};

std::unique_ptr<AppHost> make_host(EventLoop& loop, std::size_t threads,
                                   std::string_view workload, WireCapture& capture) {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 256;
  opts.encode_threads = threads;
  auto host = std::make_unique<AppHost>(loop, opts);
  const WindowId w = host->wm().create({8, 8, 288, 224}, 1);
  host->capturer().attach(w, make_app(workload, 288, 224, 21));
  HostEndpoint ep;
  ep.kind = HostEndpoint::Kind::kUdp;
  ep.send_datagram = [&capture](BytesView wire) {
    capture.stream.insert(capture.stream.end(), wire.begin(), wire.end());
    ++capture.datagrams;
    return true;
  };
  host->add_participant(std::move(ep));
  return host;
}

void run_golden(std::string_view workload) {
  EventLoop loop_serial;
  EventLoop loop_parallel;
  WireCapture serial_wire;
  WireCapture parallel_wire;
  auto serial = make_host(loop_serial, 0, workload, serial_wire);
  auto parallel = make_host(loop_parallel, 4, workload, parallel_wire);
  ASSERT_EQ(parallel->encoder().threads(), 4u);

  for (int tick = 0; tick < 50; ++tick) {
    serial->tick();
    parallel->tick();
  }
  EXPECT_GT(serial_wire.datagrams, 0u);
  EXPECT_EQ(serial_wire.datagrams, parallel_wire.datagrams);
  ASSERT_EQ(serial_wire.stream.size(), parallel_wire.stream.size());
  EXPECT_TRUE(serial_wire.stream == parallel_wire.stream)
      << "serial and parallel wire bytes diverged on workload " << workload;
}

TEST(ParallelGolden, TerminalWorkloadByteIdentical) { run_golden("terminal"); }

TEST(ParallelGolden, SlideshowWorkloadByteIdentical) { run_golden("slideshow"); }

}  // namespace
}  // namespace ads
