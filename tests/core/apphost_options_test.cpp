// AppHostOptions::validated(): impossible settings are rejected at
// construction, nonsensical-but-recoverable combinations are clamped, and
// sensible configurations pass through untouched.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/app_host.hpp"

namespace ads {
namespace {

TEST(AppHostOptions, DefaultsAreValidAndUnchanged) {
  AppHostOptions opts;
  const AppHostOptions v = AppHost::validated(opts);
  EXPECT_EQ(v.frame_interval_us, opts.frame_interval_us);
  EXPECT_EQ(v.screen_width, opts.screen_width);
  EXPECT_EQ(v.damage_tile, opts.damage_tile);
  EXPECT_EQ(v.udp_burst_bytes, opts.udp_burst_bytes);
  EXPECT_EQ(v.tcp_backlog_limit, opts.tcp_backlog_limit);
}

TEST(AppHostOptions, ZeroFrameIntervalThrows) {
  AppHostOptions opts;
  opts.frame_interval_us = 0;
  EXPECT_THROW(AppHost::validated(opts), std::invalid_argument);
  EventLoop loop;
  EXPECT_THROW(AppHost(loop, opts), std::invalid_argument);
}

TEST(AppHostOptions, NonPositiveScreenThrows) {
  AppHostOptions opts;
  opts.screen_width = 0;
  EXPECT_THROW(AppHost::validated(opts), std::invalid_argument);
  opts.screen_width = 640;
  opts.screen_height = -1;
  EXPECT_THROW(AppHost::validated(opts), std::invalid_argument);
}

TEST(AppHostOptions, ZeroMtuThrows) {
  AppHostOptions opts;
  opts.mtu_payload = 0;
  EXPECT_THROW(AppHost::validated(opts), std::invalid_argument);
}

TEST(AppHostOptions, NonPositiveDamageTileClampsToDefault) {
  AppHostOptions opts;
  opts.damage_tile = 0;
  EXPECT_EQ(AppHost::validated(opts).damage_tile, 32);
  opts.damage_tile = -8;
  EXPECT_EQ(AppHost::validated(opts).damage_tile, 32);
}

TEST(AppHostOptions, NegativeBandRowsClampToDisabled) {
  AppHostOptions opts;
  opts.region_band_rows = -1;
  EXPECT_EQ(AppHost::validated(opts).region_band_rows, 0);
}

TEST(AppHostOptions, RateControlledBurstCoversOneMtu) {
  // A burst that cannot cover a single MTU would gate every frame forever;
  // with §4.3 rate control (or adaptation) active it is raised to the MTU.
  AppHostOptions opts;
  opts.udp_rate_bps = 1'000'000;
  opts.udp_burst_bytes = 100;
  EXPECT_EQ(AppHost::validated(opts).udp_burst_bytes, opts.mtu_payload);

  AppHostOptions adaptive;
  adaptive.adaptation.enabled = true;
  adaptive.udp_burst_bytes = 1;
  EXPECT_EQ(AppHost::validated(adaptive).udp_burst_bytes, adaptive.mtu_payload);

  // Without any rate control the tiny burst is inert and left alone.
  AppHostOptions unlimited;
  unlimited.udp_burst_bytes = 100;
  EXPECT_EQ(AppHost::validated(unlimited).udp_burst_bytes, 100u);
}

TEST(AppHostOptions, SmallTcpBacklogLimitIsPreserved) {
  // Deliberately tight §7 limits (smaller than one MTU) are a legitimate
  // configuration — validation must not second-guess them.
  AppHostOptions opts;
  opts.tcp_backlog_limit = 1024;
  EXPECT_EQ(AppHost::validated(opts).tcp_backlog_limit, 1024u);
}

TEST(AppHostOptions, AdaptationBoundsAreNormalised) {
  AppHostOptions opts;
  opts.adaptation.enabled = true;
  opts.adaptation.min_rate_bps = 8'000'000;
  opts.adaptation.max_rate_bps = 1'000'000;
  opts.adaptation.initial_rate_bps = 64'000'000;
  opts.adaptation.max_fps_divisor = 0;
  opts.adaptation.backlog_window = 0;
  const AppHostOptions v = AppHost::validated(opts);
  EXPECT_EQ(v.adaptation.min_rate_bps, 1'000'000u);
  EXPECT_EQ(v.adaptation.max_rate_bps, 8'000'000u);
  EXPECT_EQ(v.adaptation.initial_rate_bps, 8'000'000u);
  EXPECT_EQ(v.adaptation.max_fps_divisor, 1);
  EXPECT_EQ(v.adaptation.backlog_window, 1);
}

TEST(AppHostOptions, ConstructorStoresValidatedOptions) {
  EventLoop loop;
  AppHostOptions opts;
  opts.damage_tile = -1;
  opts.encode_threads = 0;
  AppHost host(loop, opts);
  EXPECT_EQ(host.options().damage_tile, 32);
}

}  // namespace
}  // namespace ads
