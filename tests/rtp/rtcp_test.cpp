#include "rtp/rtcp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ads {
namespace {

TEST(Pli, WireLayout) {
  PictureLossIndication pli;
  pli.sender_ssrc = 0x11223344;
  pli.media_ssrc = 0x55667788;
  const Bytes wire = pli.serialize();
  ASSERT_EQ(wire.size(), 12u);
  EXPECT_EQ(wire[0], 0x81);      // V=2, P=0, FMT=1
  EXPECT_EQ(wire[1], 206);       // PSFB
  EXPECT_EQ(wire[2], 0);         // length hi
  EXPECT_EQ(wire[3], 2);         // length = 2 words (3 total - 1)
  EXPECT_EQ(wire[4], 0x11);
  EXPECT_EQ(wire[8], 0x55);
}

TEST(Pli, RoundTrip) {
  PictureLossIndication pli;
  pli.sender_ssrc = 7;
  pli.media_ssrc = 9;
  auto fb = RtcpFeedback::parse(pli.serialize());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(fb->type, RtcpFeedback::Type::kPli);
  EXPECT_EQ(fb->pli.sender_ssrc, 7u);
  EXPECT_EQ(fb->pli.media_ssrc, 9u);
}

TEST(Nack, RoundTripEntries) {
  GenericNack nack;
  nack.sender_ssrc = 1;
  nack.media_ssrc = 2;
  nack.entries = {{100, 0b101}, {500, 0}};
  auto fb = RtcpFeedback::parse(nack.serialize());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(fb->type, RtcpFeedback::Type::kNack);
  ASSERT_EQ(fb->nack.entries.size(), 2u);
  EXPECT_EQ(fb->nack.entries[0], (NackEntry{100, 0b101}));
  EXPECT_EQ(fb->nack.entries[1], (NackEntry{500, 0}));
}

TEST(Nack, RequestedSequencesExpandsBlp) {
  GenericNack nack;
  nack.entries = {{100, 0b101}};  // 100, 101 (bit0), 103 (bit2)
  const auto seqs = nack.requested_sequences();
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{100, 101, 103}));
}

TEST(Nack, ForSequencesPacksRuns) {
  const auto nack = GenericNack::for_sequences(1, 2, {10, 11, 12, 26, 27, 60});
  // 10 with blp bits for 11,12; 26 covers 27 (offset 1); 60 separate...
  // offsets from 10: 26 is 16 away -> fits in blp bit 15. Verify via the
  // round-trip property instead of entry layout.
  auto seqs = nack.requested_sequences();
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{10, 11, 12, 26, 27, 60}));
}

TEST(Nack, ForSequencesDeduplicates) {
  const auto nack = GenericNack::for_sequences(1, 2, {5, 5, 6, 6});
  auto seqs = nack.requested_sequences();
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{5, 6}));
}

TEST(Nack, ForSequencesHandlesWrapAround) {
  const auto nack = GenericNack::for_sequences(1, 2, {65534, 65535, 0, 1});
  auto seqs = nack.requested_sequences();
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{0, 1, 65534, 65535}));
  // Wrap must pack into one entry: pid=65534, blp bits 0,1,2.
  ASSERT_EQ(nack.entries.size(), 1u);
  EXPECT_EQ(nack.entries[0].pid, 65534);
}

TEST(Nack, EmptyListProducesNoEntries) {
  const auto nack = GenericNack::for_sequences(1, 2, {});
  EXPECT_TRUE(nack.entries.empty());
  EXPECT_TRUE(nack.requested_sequences().empty());
}

TEST(Nack, SparseLossesProduceMultipleEntries) {
  std::vector<std::uint16_t> lost;
  for (int i = 0; i < 5; ++i) lost.push_back(static_cast<std::uint16_t>(i * 100));
  const auto nack = GenericNack::for_sequences(1, 2, lost);
  EXPECT_EQ(nack.entries.size(), 5u);
}

TEST(RtcpFeedback, RejectsTruncated) {
  PictureLossIndication pli;
  const Bytes wire = pli.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(RtcpFeedback::parse(BytesView(wire).subspan(0, len)).ok()) << len;
  }
}

TEST(RtcpFeedback, RejectsUnknownTypes) {
  Bytes wire = PictureLossIndication{}.serialize();
  wire[1] = 200;  // SR — not a feedback message we handle
  auto fb = RtcpFeedback::parse(wire);
  ASSERT_FALSE(fb.ok());
  EXPECT_EQ(fb.error(), ParseError::kUnsupported);
}

TEST(RtcpFeedback, RejectsDeclaredLengthBeyondBuffer) {
  Bytes wire = PictureLossIndication{}.serialize();
  wire[3] = 10;  // declares 44 bytes
  EXPECT_FALSE(RtcpFeedback::parse(wire).ok());
}

}  // namespace
}  // namespace ads
