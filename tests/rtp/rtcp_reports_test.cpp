#include <gtest/gtest.h>

#include "rtp/rtcp.hpp"
#include "rtp/rtp_session.hpp"

namespace ads {
namespace {

TEST(SenderReport, WireRoundTrip) {
  SenderReport sr;
  sr.ssrc = 0x12345678;
  sr.ntp_timestamp = 0xAABBCCDD00112233ull;
  sr.rtp_timestamp = 90000;
  sr.packet_count = 1000;
  sr.octet_count = 123456;
  sr.blocks.push_back(ReportBlock{1, 10, 20, 30, 40, 50, 60});

  auto parsed = parse_rtcp(sr.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(std::holds_alternative<SenderReport>(*parsed));
  EXPECT_EQ(std::get<SenderReport>(*parsed), sr);
}

TEST(ReceiverReport, WireRoundTrip) {
  ReceiverReport rr;
  rr.ssrc = 0xCAFE;
  rr.blocks.push_back(ReportBlock{7, 128, 42, 0x00010005, 99, 1, 2});
  rr.blocks.push_back(ReportBlock{8, 0, 0, 0, 0, 0, 0});

  auto parsed = parse_rtcp(rr.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(std::holds_alternative<ReceiverReport>(*parsed));
  EXPECT_EQ(std::get<ReceiverReport>(*parsed), rr);
}

TEST(ParseRtcp, RoutesFeedbackTypesToo) {
  PictureLossIndication pli;
  pli.sender_ssrc = 1;
  auto parsed = parse_rtcp(pli.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::holds_alternative<PictureLossIndication>(*parsed));

  auto nack = parse_rtcp(GenericNack::for_sequences(1, 2, {5}).serialize());
  ASSERT_TRUE(nack.ok());
  EXPECT_TRUE(std::holds_alternative<GenericNack>(*nack));
}

TEST(ParseRtcp, RejectsTruncatedReports) {
  SenderReport sr;
  sr.blocks.push_back(ReportBlock{});
  const Bytes wire = sr.serialize();
  for (std::size_t len = 0; len < wire.size(); len += 3) {
    EXPECT_FALSE(parse_rtcp(BytesView(wire).subspan(0, len)).ok()) << len;
  }
}

TEST(ParseRtcp, RejectsUnknownPt) {
  Bytes wire = ReceiverReport{}.serialize();
  wire[1] = 204;  // APP
  EXPECT_FALSE(parse_rtcp(wire).ok());
}

RtpPacket pkt(std::uint16_t seq, std::uint32_t ts) {
  RtpPacket p;
  p.sequence = seq;
  p.timestamp = ts;
  return p;
}

TEST(ReceiverJitter, ZeroForPerfectlyPacedStream) {
  RtpReceiver rx;
  // Packets exactly 100 ms apart in both RTP time and arrival time.
  for (int i = 0; i < 50; ++i) {
    rx.on_packet(pkt(static_cast<std::uint16_t>(i), 9000u * static_cast<std::uint32_t>(i)),
                 static_cast<SimTimeUs>(i) * 100'000);
  }
  EXPECT_EQ(rx.jitter(), 0u);
}

TEST(ReceiverJitter, GrowsWithArrivalVariance) {
  RtpReceiver steady;
  RtpReceiver jittery;
  for (int i = 0; i < 100; ++i) {
    const auto ts = 9000u * static_cast<std::uint32_t>(i);
    steady.on_packet(pkt(static_cast<std::uint16_t>(i), ts),
                     static_cast<SimTimeUs>(i) * 100'000);
    // +-20 ms alternating arrival error.
    const std::int64_t wobble = (i % 2 == 0) ? 20'000 : -20'000;
    jittery.on_packet(
        pkt(static_cast<std::uint16_t>(i), ts),
        static_cast<SimTimeUs>(static_cast<std::int64_t>(i) * 100'000 + wobble +
                               20'000));
  }
  EXPECT_GT(jittery.jitter(), steady.jitter());
  // 40 ms swing = 3600 ticks; the filter should settle in that region.
  EXPECT_GT(jittery.jitter(), 1000u);
}

TEST(ReceiverSnapshot, FractionLostPerInterval) {
  RtpReceiver rx;
  // First interval: 10 packets, 0 lost.
  for (std::uint16_t s = 0; s < 10; ++s) rx.on_packet(pkt(s, 0));
  ReportBlock first = rx.snapshot(42);
  EXPECT_EQ(first.ssrc, 42u);
  EXPECT_EQ(first.fraction_lost, 0);
  EXPECT_EQ(first.cumulative_lost, 0u);

  // Second interval: receive 10..19 but drop half (skip even seqs).
  for (std::uint16_t s = 10; s < 20; ++s) {
    if (s % 2 == 1) rx.on_packet(pkt(s, 0));
  }
  ReportBlock second = rx.snapshot(42);
  // 10 expected, 5 received -> fraction ~ 128/256.
  EXPECT_NEAR(second.fraction_lost, 128, 32);
  EXPECT_EQ(second.cumulative_lost, 5u);
}

TEST(ReceiverSnapshot, ExtendedSequenceCountsCycles) {
  RtpReceiver rx;
  rx.on_packet(pkt(65534, 0));
  rx.on_packet(pkt(65535, 0));
  rx.on_packet(pkt(0, 0));  // wrap
  rx.on_packet(pkt(1, 0));
  EXPECT_EQ(rx.extended_highest_sequence(), (1u << 16) | 1u);
}

}  // namespace
}  // namespace ads
