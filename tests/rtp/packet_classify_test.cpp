#include "rtp/packet_classify.hpp"

#include <gtest/gtest.h>

#include "bfcp/bfcp_message.hpp"
#include "hip/messages.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_session.hpp"

namespace ads {
namespace {

TEST(PacketClassify, RtpPacketsClassified) {
  RtpSender sender(kHipPayloadType, 1);
  const Bytes wire = sender.make_packet(serialize_hip(MouseMoved{1, 2, 3}), false, 0)
                         .serialize();
  EXPECT_EQ(classify_packet(wire), PacketKind::kRtp);
}

TEST(PacketClassify, RtpWithMarkerStillRtp) {
  RtpSender sender(kRemotingPayloadType, 1);
  const Bytes wire = sender.make_packet({1, 2}, true, 0).serialize();
  // Second byte is 0x80|99 = 227, close to but outside the RTCP 200..207
  // window.
  EXPECT_EQ(classify_packet(wire), PacketKind::kRtp);
}

TEST(PacketClassify, RtcpPliAndNack) {
  EXPECT_EQ(classify_packet(PictureLossIndication{}.serialize()), PacketKind::kRtcp);
  EXPECT_EQ(classify_packet(GenericNack::for_sequences(1, 2, {7}).serialize()),
            PacketKind::kRtcp);
}

TEST(PacketClassify, Bfcp) {
  EXPECT_EQ(classify_packet(BfcpMessage{}.serialize()), PacketKind::kBfcp);
}

TEST(PacketClassify, GarbageUnknown) {
  EXPECT_EQ(classify_packet(Bytes{}), PacketKind::kUnknown);
  EXPECT_EQ(classify_packet(Bytes{0x00}), PacketKind::kUnknown);
  EXPECT_EQ(classify_packet(Bytes{0x00, 0x01, 0x02}), PacketKind::kUnknown);
  EXPECT_EQ(classify_packet(Bytes{0xFF, 0xFF}), PacketKind::kUnknown);
}

}  // namespace
}  // namespace ads
