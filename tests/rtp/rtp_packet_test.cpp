#include "rtp/rtp_packet.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

RtpPacket sample() {
  RtpPacket pkt;
  pkt.marker = true;
  pkt.payload_type = kRemotingPayloadType;
  pkt.sequence = 0xABCD;
  pkt.timestamp = 0x01020304;
  pkt.ssrc = 0xDEADBEEF;
  pkt.payload = {1, 2, 3, 4, 5};
  return pkt;
}

TEST(RtpPacket, SerializeLayout) {
  const Bytes wire = sample().serialize();
  ASSERT_EQ(wire.size(), 12u + 5u);
  EXPECT_EQ(wire[0], 0x80);  // V=2, P=0, X=0, CC=0
  EXPECT_EQ(wire[1], 0x80 | 99);  // M=1, PT=99
  EXPECT_EQ(wire[2], 0xAB);
  EXPECT_EQ(wire[3], 0xCD);
  EXPECT_EQ(wire[4], 0x01);
  EXPECT_EQ(wire[7], 0x04);
  EXPECT_EQ(wire[8], 0xDE);
  EXPECT_EQ(wire[11], 0xEF);
  EXPECT_EQ(wire[12], 1);
}

TEST(RtpPacket, RoundTrip) {
  const RtpPacket pkt = sample();
  auto parsed = RtpPacket::parse(pkt.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->marker, pkt.marker);
  EXPECT_EQ(parsed->payload_type, pkt.payload_type);
  EXPECT_EQ(parsed->sequence, pkt.sequence);
  EXPECT_EQ(parsed->timestamp, pkt.timestamp);
  EXPECT_EQ(parsed->ssrc, pkt.ssrc);
  EXPECT_EQ(parsed->payload, pkt.payload);
}

TEST(RtpPacket, EmptyPayloadAllowed) {
  RtpPacket pkt = sample();
  pkt.payload.clear();
  auto parsed = RtpPacket::parse(pkt.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(RtpPacket, RejectsWrongVersion) {
  Bytes wire = sample().serialize();
  wire[0] = 0x40;  // version 1
  auto parsed = RtpPacket::parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);
}

TEST(RtpPacket, RejectsTruncatedHeader) {
  const Bytes wire = sample().serialize();
  for (std::size_t len = 0; len < 12; ++len) {
    EXPECT_FALSE(RtpPacket::parse(BytesView(wire).subspan(0, len)).ok()) << len;
  }
}

TEST(RtpPacket, SkipsCsrcList) {
  Bytes wire = sample().serialize();
  wire[0] = 0x82;  // CC=2
  // Insert 8 CSRC bytes after the fixed header.
  Bytes csrc(8, 0x11);
  wire.insert(wire.begin() + 12, csrc.begin(), csrc.end());
  auto parsed = RtpPacket::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->payload, (Bytes{1, 2, 3, 4, 5}));
}

TEST(RtpPacket, HandlesPadding) {
  Bytes wire = sample().serialize();
  wire[0] |= 0x20;  // P=1
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(3);  // 3 padding bytes (the two zeros + the count byte)
  auto parsed = RtpPacket::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->payload, (Bytes{1, 2, 3, 4, 5}));
}

TEST(RtpPacket, RejectsBadPadding) {
  Bytes wire = sample().serialize();
  wire[0] |= 0x20;
  wire.back() = 200;  // padding count exceeds payload
  EXPECT_FALSE(RtpPacket::parse(wire).ok());
}

TEST(RtpPacket, RejectsHeaderExtension) {
  Bytes wire = sample().serialize();
  wire[0] |= 0x10;  // X=1
  auto parsed = RtpPacket::parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kUnsupported);
}

TEST(SeqArithmetic, ModularComparisons) {
  EXPECT_TRUE(seq_less(1, 2));
  EXPECT_FALSE(seq_less(2, 1));
  EXPECT_TRUE(seq_less(65535, 0));   // wrap
  EXPECT_TRUE(seq_less(65530, 5));
  EXPECT_FALSE(seq_less(5, 65530));
  EXPECT_EQ(seq_diff(10, 15), 5);
  EXPECT_EQ(seq_diff(65535, 2), 3);
  EXPECT_EQ(seq_diff(2, 65535), -3);
}

}  // namespace
}  // namespace ads
