// Compound RTCP wire round-trips (RFC 3550 §6.1): serialise a message list,
// parse it back, re-serialise — byte-equal. Plus the walker's failure and
// tolerance modes: unknown packet types are skipped (not fatal), truncation
// and bad versions reject the whole datagram.
#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "rtp/rtcp.hpp"

namespace ads {
namespace {

ReportBlock sample_block(std::uint32_t ssrc, std::uint8_t lost) {
  ReportBlock b;
  b.ssrc = ssrc;
  b.fraction_lost = lost;
  b.cumulative_lost = 123;
  b.ext_highest_seq = 0x00010042;
  b.jitter = 777;
  b.last_sr = 0xAABBCCDD;
  b.delay_since_last_sr = 65536;
  return b;
}

std::vector<RtcpMessage> sample_compound() {
  SenderReport sr;
  sr.ssrc = 0x1111;
  sr.ntp_timestamp = 0x0123456789ABCDEFull;
  sr.rtp_timestamp = 90'000;
  sr.packet_count = 10;
  sr.octet_count = 4096;
  sr.blocks.push_back(sample_block(0x2222, 5));
  sr.blocks.push_back(sample_block(0x3333, 0));

  ReceiverReport rr;
  rr.ssrc = 0x4444;
  rr.blocks.push_back(sample_block(0x2222, 130));

  PictureLossIndication pli;
  pli.sender_ssrc = 0x4444;
  pli.media_ssrc = 0x2222;

  const GenericNack nack =
      GenericNack::for_sequences(0x4444, 0x2222, {100, 101, 103, 200});

  return {RtcpMessage(sr), RtcpMessage(rr), RtcpMessage(pli),
          RtcpMessage(nack)};
}

TEST(RtcpCompound, SerialiseParseReserialiseIsByteEqual) {
  const std::vector<RtcpMessage> msgs = sample_compound();
  const Bytes wire = serialize_rtcp_compound(msgs);

  auto parsed = parse_rtcp_compound(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), msgs.size());

  const Bytes rewire = serialize_rtcp_compound(*parsed);
  EXPECT_EQ(rewire, wire);

  // And the fields made the trip intact.
  const auto& sr = std::get<SenderReport>((*parsed)[0]);
  EXPECT_EQ(sr.ntp_timestamp, 0x0123456789ABCDEFull);
  ASSERT_EQ(sr.blocks.size(), 2u);
  EXPECT_EQ(sr.blocks[1].ssrc, 0x3333u);
  const auto& rr = std::get<ReceiverReport>((*parsed)[1]);
  EXPECT_EQ(rr.blocks[0].fraction_lost, 130);
  EXPECT_EQ(rr.blocks[0].delay_since_last_sr, 65536u);
  const auto& nack = std::get<GenericNack>((*parsed)[3]);
  const auto seqs = nack.requested_sequences();
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{100, 101, 103, 200}));
}

TEST(RtcpCompound, SingleMessageCompoundMatchesPlainParse) {
  PictureLossIndication pli;
  pli.sender_ssrc = 0xAA;
  pli.media_ssrc = 0xBB;
  const Bytes wire = pli.serialize();

  auto compound = parse_rtcp_compound(wire);
  ASSERT_TRUE(compound.ok());
  ASSERT_EQ(compound->size(), 1u);
  auto single = parse_rtcp(wire);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(serialize_rtcp((*compound)[0]), serialize_rtcp(*single));
}

TEST(RtcpCompound, UnknownPacketTypesAreSkippedNotFatal) {
  // PLI + SDES (pt 202, unsupported) + RR: the walker must step over the
  // middle packet by its declared length and still return both neighbours.
  PictureLossIndication pli;
  pli.sender_ssrc = 0xAA;
  pli.media_ssrc = 0xBB;
  Bytes wire = pli.serialize();

  const Bytes sdes = {0x81, 202, 0x00, 0x01, 0xDE, 0xAD, 0xBE, 0xEF};
  wire.insert(wire.end(), sdes.begin(), sdes.end());

  ReceiverReport rr;
  rr.ssrc = 0xCC;
  const Bytes rr_wire = rr.serialize();
  wire.insert(wire.end(), rr_wire.begin(), rr_wire.end());

  auto parsed = parse_rtcp_compound(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(std::holds_alternative<PictureLossIndication>((*parsed)[0]));
  EXPECT_TRUE(std::holds_alternative<ReceiverReport>((*parsed)[1]));
}

TEST(RtcpCompound, EmptyDatagramParsesToNoMessages) {
  auto parsed = parse_rtcp_compound(BytesView());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(RtcpCompound, TruncatedChainRejectsWholeDatagram) {
  const Bytes wire = serialize_rtcp_compound(sample_compound());
  // Any cut inside the chain — mid-header or mid-body — must reject.
  for (const std::size_t cut : {wire.size() - 1, wire.size() - 5, std::size_t{3}}) {
    auto parsed = parse_rtcp_compound(BytesView(wire.data(), cut));
    ASSERT_FALSE(parsed.ok()) << "cut at " << cut;
    EXPECT_EQ(parsed.error(), ParseError::kTruncated);
  }
}

TEST(RtcpCompound, DeclaredLengthBeyondBufferIsTruncation) {
  PictureLossIndication pli;
  Bytes wire = pli.serialize();
  wire[3] = 40;  // claims 164 bytes; only 12 present
  auto parsed = parse_rtcp_compound(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kTruncated);
}

TEST(RtcpCompound, BadVersionInAnySubPacketRejects) {
  PictureLossIndication pli;
  Bytes wire = pli.serialize();
  const Bytes second = pli.serialize();
  wire.insert(wire.end(), second.begin(), second.end());
  wire[12] = 0x41;  // second sub-packet claims RTP version 1
  auto parsed = parse_rtcp_compound(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);
}

/// Append RFC 3550 padding to one serialised RTCP packet: `pad` zero bytes
/// with the count in the last octet, P bit set, length field grown to match.
Bytes with_padding(Bytes wire, std::uint8_t pad) {
  wire[0] = static_cast<std::uint8_t>(wire[0] | 0x20);
  wire.insert(wire.end(), pad, 0x00);
  if (pad > 0) wire.back() = pad;
  const std::size_t words = wire.size() / 4 - 1;
  wire[2] = static_cast<std::uint8_t>(words >> 8);
  wire[3] = static_cast<std::uint8_t>(words & 0xFF);
  return wire;
}

TEST(RtcpCompound, PaddingOnTheFinalSubPacketIsStrippedBeforeParsing) {
  PictureLossIndication pli;
  pli.sender_ssrc = 0xAA;
  pli.media_ssrc = 0xBB;
  ReceiverReport rr;
  rr.ssrc = 0xCC;
  rr.blocks.push_back(sample_block(0x2222, 9));

  // Compound padding lives on the last sub-packet only (§6.4.1).
  Bytes wire = pli.serialize();
  const Bytes padded_rr = with_padding(rr.serialize(), 8);
  wire.insert(wire.end(), padded_rr.begin(), padded_rr.end());

  auto parsed = parse_rtcp_compound(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  const auto& got = std::get<ReceiverReport>((*parsed)[1]);
  EXPECT_EQ(got.ssrc, 0xCCu);
  ASSERT_EQ(got.blocks.size(), 1u);
  EXPECT_EQ(got.blocks[0].fraction_lost, 9);
  // The strip is invisible downstream: re-serialising yields the unpadded
  // equivalent of the same messages.
  EXPECT_EQ(serialize_rtcp((*parsed)[1]), rr.serialize());

  // A padded singleton datagram is its own final sub-packet.
  auto single = parse_rtcp_compound(with_padding(pli.serialize(), 4));
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single->size(), 1u);
  EXPECT_EQ(std::get<PictureLossIndication>((*single)[0]).media_ssrc, 0xBBu);
}

TEST(RtcpCompound, PaddingOnANonFinalSubPacketRejects) {
  PictureLossIndication pli;
  pli.sender_ssrc = 0xAA;
  Bytes wire = with_padding(pli.serialize(), 4);
  ReceiverReport rr;
  rr.ssrc = 0xCC;
  const Bytes tail = rr.serialize();
  wire.insert(wire.end(), tail.begin(), tail.end());

  auto parsed = parse_rtcp_compound(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);
}

TEST(RtcpCompound, InconsistentPadCountsReject) {
  PictureLossIndication pli;
  pli.sender_ssrc = 0xAA;
  pli.media_ssrc = 0;  // last payload octet is 0x00

  // P bit set but a zero pad count (the last octet reads 0).
  Bytes zero_pad = pli.serialize();
  zero_pad[0] = static_cast<std::uint8_t>(zero_pad[0] | 0x20);
  auto parsed = parse_rtcp_compound(zero_pad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);

  // Pad count not a multiple of the 32-bit word size.
  Bytes odd_pad = with_padding(pli.serialize(), 4);
  odd_pad.back() = 2;
  parsed = parse_rtcp_compound(odd_pad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);

  // Pad count that would swallow the sub-packet header itself.
  Bytes greedy_pad = with_padding(pli.serialize(), 4);
  greedy_pad.back() = 16;  // declared 16 bytes total, 16 + 4 > 16
  parsed = parse_rtcp_compound(greedy_pad);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);
}

TEST(RtcpCompound, EmptyMessageListSerialisesToZeroBytes) {
  // The zero-length end of the chain contract, both directions.
  EXPECT_TRUE(serialize_rtcp_compound({}).empty());
  auto parsed = parse_rtcp_compound(BytesView());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(RtcpCompound, RelayStyleRrPlusNackCompound) {
  // The shape the relay emits every report interval: one aggregated RR and
  // one deduplicated NACK in a single datagram.
  ReceiverReport rr;
  rr.ssrc = 0x5555;
  rr.blocks.push_back(sample_block(0x2222, 12));
  std::vector<RtcpMessage> msgs{RtcpMessage(rr)};
  msgs.push_back(
      RtcpMessage(GenericNack::for_sequences(0x5555, 0x2222, {7, 8, 9})));

  const Bytes wire = serialize_rtcp_compound(msgs);
  auto parsed = parse_rtcp_compound(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(serialize_rtcp_compound(*parsed), wire);
}

}  // namespace
}  // namespace ads
