#include "rtp/rtp_session.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ads {
namespace {

TEST(RtpSender, AssignsConsecutiveSequences) {
  RtpSender sender(99, 1);
  const std::uint16_t first = sender.next_sequence();
  auto p1 = sender.make_packet({1}, false, 0);
  auto p2 = sender.make_packet({2}, false, 0);
  EXPECT_EQ(p1.sequence, first);
  EXPECT_EQ(p2.sequence, static_cast<std::uint16_t>(first + 1));
}

TEST(RtpSender, RandomisedInitialState) {
  // §5.1.1: "the initial value of the timestamp MUST be random".
  RtpSender a(99, 1);
  RtpSender b(99, 2);
  EXPECT_NE(a.timestamp_at(0), b.timestamp_at(0));
  EXPECT_NE(a.ssrc(), b.ssrc());
  // Same seed reproduces (determinism for tests).
  RtpSender a2(99, 1);
  EXPECT_EQ(a.timestamp_at(0), a2.timestamp_at(0));
  EXPECT_EQ(a.ssrc(), a2.ssrc());
}

TEST(RtpSender, TimestampAdvancesAt90kHz) {
  RtpSender sender(99, 3);
  const std::uint32_t t0 = sender.timestamp_at(0);
  // 1 second = 90000 ticks; 100 ms = 9000.
  EXPECT_EQ(sender.timestamp_at(1'000'000) - t0, 90000u);
  EXPECT_EQ(sender.timestamp_at(100'000) - t0, 9000u);
}

TEST(RtpSender, AccountsBytesAndPackets) {
  RtpSender sender(99, 4);
  sender.make_packet(Bytes(100, 0), false, 0);
  sender.make_packet(Bytes(50, 0), true, 0);
  EXPECT_EQ(sender.packets_sent(), 2u);
  EXPECT_EQ(sender.bytes_sent(), 100u + 50u + 2 * RtpPacket::kHeaderSize);
}

TEST(UsToRtpTicks, Conversion) {
  EXPECT_EQ(us_to_rtp_ticks(0), 0u);
  EXPECT_EQ(us_to_rtp_ticks(1'000'000), 90000u);
  EXPECT_EQ(us_to_rtp_ticks(11'111), 999u);  // floor semantics
}

RtpPacket packet_with_seq(std::uint16_t seq) {
  RtpPacket pkt;
  pkt.sequence = seq;
  pkt.payload_type = 99;
  return pkt;
}

TEST(RtpReceiver, InOrderStreamHasNoLosses) {
  RtpReceiver rx;
  for (std::uint16_t s = 100; s < 200; ++s) {
    EXPECT_TRUE(rx.on_packet(packet_with_seq(s)));
  }
  EXPECT_TRUE(rx.missing().empty());
  EXPECT_EQ(rx.received(), 100u);
  EXPECT_EQ(rx.duplicates(), 0u);
}

TEST(RtpReceiver, GapIsReportedMissing) {
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(10));
  rx.on_packet(packet_with_seq(14));
  EXPECT_EQ(rx.missing(), (std::vector<std::uint16_t>{11, 12, 13}));
}

TEST(RtpReceiver, LatePacketFillsGap) {
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(10));
  rx.on_packet(packet_with_seq(13));
  EXPECT_TRUE(rx.on_packet(packet_with_seq(11)));
  EXPECT_EQ(rx.missing(), (std::vector<std::uint16_t>{12}));
}

TEST(RtpReceiver, DuplicateDetected) {
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(5));
  EXPECT_FALSE(rx.on_packet(packet_with_seq(5)));
  EXPECT_EQ(rx.duplicates(), 1u);
}

TEST(RtpReceiver, ForgetRemovesMissingEntry) {
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(1));
  rx.on_packet(packet_with_seq(4));
  rx.forget(2);
  EXPECT_EQ(rx.missing(), (std::vector<std::uint16_t>{3}));
  rx.reset_losses();
  EXPECT_TRUE(rx.missing().empty());
}

TEST(RtpReceiver, SequenceWrapAround) {
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(65534));
  rx.on_packet(packet_with_seq(1));  // 65535 and 0 lost
  auto missing = rx.missing();
  std::sort(missing.begin(), missing.end());
  EXPECT_EQ(missing, (std::vector<std::uint16_t>{0, 65535}));
  EXPECT_EQ(rx.highest_sequence(), 1);
}

TEST(RtpReceiver, MissingListCapped) {
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(0));
  rx.on_packet(packet_with_seq(1000));
  EXPECT_EQ(rx.missing(10).size(), 10u);
}

TEST(RtpReceiver, ReorderedPacketDoesNotInflateCycles) {
  // {4, 5, 3, 6}: an ordinary late packet must not look like a 16-bit wrap.
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(4));
  rx.on_packet(packet_with_seq(5));
  rx.on_packet(packet_with_seq(3));
  rx.on_packet(packet_with_seq(6));
  EXPECT_EQ(rx.extended_highest_sequence(), 6u);  // cycles stayed 0
  EXPECT_EQ(rx.highest_sequence(), 6);
  EXPECT_TRUE(rx.missing().empty());

  const ReportBlock rr = rx.snapshot(0x1234);
  EXPECT_EQ(rr.fraction_lost, 0);
  EXPECT_EQ(rr.cumulative_lost, 0u);
}

TEST(RtpReceiver, AncientStragglerDoesNotAdvanceStream) {
  // A straggler from more than half a window back (here 32774 behind the
  // highest) used to be misread as a forward wrap: cycles_ jumped, the
  // extended sequence inflated by 65536, highest_seq_ regressed, ~32k fake
  // missing entries appeared and the next RR pinned fraction_lost at 255 —
  // spuriously tripping the ads::rate multiplicative decrease.
  RtpReceiver rx;
  for (std::uint32_t s = 0; s <= 36865; ++s) {
    rx.on_packet(packet_with_seq(static_cast<std::uint16_t>(s)));
  }
  (void)rx.snapshot(0x1234);  // close the interval: loss-free so far

  rx.on_packet(packet_with_seq(4091));  // 36865 - 4091 = 32774 behind

  EXPECT_EQ(rx.highest_sequence(), 36865);
  EXPECT_EQ(rx.extended_highest_sequence(), 36865u);
  EXPECT_TRUE(rx.missing().empty());
  const ReportBlock rr = rx.snapshot(0x1234);
  EXPECT_EQ(rr.fraction_lost, 0);
  EXPECT_EQ(rr.cumulative_lost, 0u);
}

TEST(RtpReceiver, BlackoutRestartConfirmedByConsecutivePackets) {
  // A forward jump beyond kMaxDropout is quarantined until two consecutive
  // packets prove the stream really continues there (RFC 3550 A.1).
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(100));
  rx.on_packet(packet_with_seq(5000));
  EXPECT_EQ(rx.highest_sequence(), 100);  // suspect: not yet accepted
  rx.on_packet(packet_with_seq(5001));
  EXPECT_EQ(rx.highest_sequence(), 5001);
  EXPECT_EQ(rx.extended_highest_sequence(), 5001u);  // no cycle counted
  // The blackout gap is not enumerated for NACK — PLI escalation owns it.
  EXPECT_TRUE(rx.missing().empty());
}

TEST(RtpReceiver, RestartAcrossWrapCountsOneCycle) {
  // A confirmed restart whose new position is numerically below the old
  // highest really did cross the 16-bit wrap: exactly one cycle.
  RtpReceiver rx;
  rx.on_packet(packet_with_seq(0xFF00));
  rx.on_packet(packet_with_seq(0x2000));
  rx.on_packet(packet_with_seq(0x2001));
  EXPECT_EQ(rx.highest_sequence(), 0x2001);
  EXPECT_EQ(rx.extended_highest_sequence(), (1u << 16) | 0x2001);
}

}  // namespace
}  // namespace ads
