// PacketView: header-plus-view packets must be bit-compatible with the
// classic RtpPacket serialisation, frame correctly for RFC 4571 streams, and
// share (not copy) their payload buffer.
#include "rtp/packet_view.hpp"

#include <gtest/gtest.h>

#include "buf/buf.hpp"
#include "rtp/framing.hpp"
#include "rtp/rtp_packet.hpp"

namespace ads {
namespace {

buf::BufRef filled_buf(buf::BufPool& pool, std::size_t n) {
  buf::BufRef ref = pool.acquire(n);
  for (std::size_t i = 0; i < n; ++i)
    ref.bytes().push_back(static_cast<std::uint8_t>(i * 7 + 3));
  return ref;
}

TEST(PacketView, SerialisesIdenticallyToRtpPacket) {
  buf::BufPool pool;
  buf::BufRef buf = filled_buf(pool, 300);
  for (const bool marker : {false, true}) {
    const PacketView view =
        PacketView::build(marker, kRemotingPayloadType, 0xBEEF, 0x01020304,
                          0xCAFEBABE, buf, 17, 200);

    RtpPacket pkt;
    pkt.marker = marker;
    pkt.payload_type = kRemotingPayloadType;
    pkt.sequence = 0xBEEF;
    pkt.timestamp = 0x01020304;
    pkt.ssrc = 0xCAFEBABE;
    const BytesView window = buf.slice(17, 200);
    pkt.payload.assign(window.begin(), window.end());

    EXPECT_EQ(view.serialize(), pkt.serialize());
    EXPECT_EQ(view.wire_size(), pkt.wire_size());
  }
}

TEST(PacketView, AccessorsDecodeHeaderStorage) {
  buf::BufPool pool;
  const PacketView view = PacketView::build(
      true, kHipPayloadType, 0x1234, 0xA1B2C3D4, 0x55667788, pool.acquire(0), 0, 0);
  EXPECT_TRUE(view.marker());
  EXPECT_EQ(view.payload_type(), kHipPayloadType);
  EXPECT_EQ(view.sequence(), 0x1234);
  EXPECT_EQ(view.timestamp(), 0xA1B2C3D4u);
  EXPECT_EQ(view.ssrc(), 0x55667788u);
  EXPECT_EQ(view.wire_size(), PacketView::kHeaderSize);
}

TEST(PacketView, FramedHeaderMatchesRfc4571Framing) {
  buf::BufPool pool;
  buf::BufRef buf = filled_buf(pool, 64);
  const PacketView view = PacketView::build(false, kRemotingPayloadType, 7, 8, 9,
                                            buf, 5, 40);

  // frame_packet on the contiguous datagram is the oracle.
  auto framed = frame_packet(view.serialize());
  ASSERT_TRUE(framed.ok());
  Bytes gathered;
  const BytesView fh = view.framed_header();
  const BytesView body = view.payload();
  gathered.insert(gathered.end(), fh.begin(), fh.end());
  gathered.insert(gathered.end(), body.begin(), body.end());
  EXPECT_EQ(gathered, *framed);
  EXPECT_EQ(view.framed_size(), framed->size());
}

TEST(PacketView, RoundTripsThroughRtpPacketParse) {
  buf::BufPool pool;
  buf::BufRef buf = filled_buf(pool, 128);
  const PacketView view = PacketView::build(true, kRemotingPayloadType, 42, 90000,
                                            0xABCD, buf, 0, 128);
  auto parsed = RtpPacket::parse(view.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->marker);
  EXPECT_EQ(parsed->sequence, 42);
  EXPECT_EQ(parsed->timestamp, 90000u);
  EXPECT_EQ(parsed->ssrc, 0xABCDu);
  const BytesView window = view.payload();
  EXPECT_TRUE(std::equal(parsed->payload.begin(), parsed->payload.end(),
                         window.begin(), window.end()));
}

TEST(PacketView, SharesPayloadBufferAcrossCopies) {
  buf::BufPool pool;
  buf::BufRef buf = filled_buf(pool, 1200);
  std::vector<PacketView> cohort;
  for (int member = 0; member < 8; ++member) {
    cohort.push_back(PacketView::build(false, kRemotingPayloadType,
                                       static_cast<std::uint16_t>(member), 1, 2,
                                       buf, 0, 1200));
  }
  // 8 packets + the local ref: one buffer, nine references, zero copies.
  EXPECT_EQ(buf.refcount(), 9u);
  for (const auto& v : cohort) {
    EXPECT_EQ(v.payload().data(), buf.view().data());
  }
  cohort.clear();
  EXPECT_EQ(buf.refcount(), 1u);
  EXPECT_EQ(pool.stats().outstanding, 1u);
}

TEST(PacketView, DefaultConstructedIsEmpty) {
  const PacketView view;
  EXPECT_FALSE(static_cast<bool>(view));
  EXPECT_EQ(view.wire_size(), PacketView::kHeaderSize);
}

}  // namespace
}  // namespace ads
