#include "rtp/framing.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ads {
namespace {

TEST(Framing, PrefixesLength) {
  const Bytes pkt = {0xAA, 0xBB, 0xCC};
  auto framed = frame_packet(pkt);
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(*framed, (Bytes{0x00, 0x03, 0xAA, 0xBB, 0xCC}));
}

TEST(Framing, EmptyPacket) {
  auto framed = frame_packet({});
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(*framed, (Bytes{0x00, 0x00}));
}

TEST(Framing, RejectsOversizedPacket) {
  const Bytes big(70000, 0);
  auto framed = frame_packet(big);
  ASSERT_FALSE(framed.ok());
  EXPECT_EQ(framed.error(), ParseError::kOverflow);
}

TEST(Deframer, SinglePacketWholeChunk) {
  StreamDeframer d;
  d.feed(frame_packet(Bytes{1, 2, 3}).value());
  auto pkt = d.next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(*pkt, (Bytes{1, 2, 3}));
  EXPECT_FALSE(d.next().has_value());
}

TEST(Deframer, ByteAtATime) {
  StreamDeframer d;
  const Bytes stream = frame_packet(Bytes{9, 8, 7, 6}).value();
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    d.feed(BytesView(&stream[i], 1));
    EXPECT_FALSE(d.next().has_value()) << "byte " << i;
  }
  d.feed(BytesView(&stream.back(), 1));
  auto pkt = d.next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(*pkt, (Bytes{9, 8, 7, 6}));
}

TEST(Deframer, MultiplePacketsOneChunk) {
  StreamDeframer d;
  Bytes stream = frame_packet(Bytes{1}).value();
  const Bytes second = frame_packet(Bytes{2, 2}).value();
  const Bytes third = frame_packet(Bytes{}).value();
  stream.insert(stream.end(), second.begin(), second.end());
  stream.insert(stream.end(), third.begin(), third.end());
  d.feed(stream);
  EXPECT_EQ(d.next().value(), (Bytes{1}));
  EXPECT_EQ(d.next().value(), (Bytes{2, 2}));
  EXPECT_EQ(d.next().value(), Bytes{});
  EXPECT_FALSE(d.next().has_value());
}

TEST(Deframer, SplitAcrossLengthPrefix) {
  StreamDeframer d;
  const Bytes stream = frame_packet(Bytes{5, 5, 5}).value();
  d.feed(BytesView(stream).subspan(0, 1));  // half the length field
  EXPECT_FALSE(d.next().has_value());
  d.feed(BytesView(stream).subspan(1));
  EXPECT_EQ(d.next().value(), (Bytes{5, 5, 5}));
}

TEST(Deframer, LargeStreamRandomChunking) {
  Prng rng(41);
  std::vector<Bytes> packets;
  Bytes stream;
  for (int i = 0; i < 200; ++i) {
    Bytes pkt(rng.below(400));
    for (auto& b : pkt) b = static_cast<std::uint8_t>(rng.next_u32());
    auto framed = frame_packet(pkt);
    stream.insert(stream.end(), framed->begin(), framed->end());
    packets.push_back(std::move(pkt));
  }

  StreamDeframer d;
  std::size_t delivered = 0;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t chunk = std::min<std::size_t>(1 + rng.below(97),
                                                    stream.size() - pos);
    d.feed(BytesView(stream).subspan(pos, chunk));
    pos += chunk;
    while (auto pkt = d.next()) {
      ASSERT_LT(delivered, packets.size());
      EXPECT_EQ(*pkt, packets[delivered]);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, packets.size());
  EXPECT_EQ(d.pending_bytes(), 0u);
}

TEST(Deframer, PendingBytesTracksBuffer) {
  StreamDeframer d;
  d.feed(Bytes{0x00});
  EXPECT_EQ(d.pending_bytes(), 1u);
  d.feed(Bytes{0x02, 0xAA});
  EXPECT_EQ(d.pending_bytes(), 3u);
  EXPECT_FALSE(d.next().has_value());
  d.feed(Bytes{0xBB});
  EXPECT_TRUE(d.next().has_value());
  EXPECT_EQ(d.pending_bytes(), 0u);
}

}  // namespace
}  // namespace ads
