#include "rtp/reorder_buffer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/prng.hpp"

namespace ads {
namespace {

RtpPacket pkt(std::uint16_t seq) {
  RtpPacket p;
  p.sequence = seq;
  p.payload = {static_cast<std::uint8_t>(seq), static_cast<std::uint8_t>(seq >> 8)};
  return p;
}

std::vector<std::uint16_t> seqs(const std::vector<RtpPacket>& packets) {
  std::vector<std::uint16_t> out;
  for (const auto& p : packets) out.push_back(p.sequence);
  return out;
}

TEST(ReorderBuffer, InOrderPassThrough) {
  ReorderBuffer buf;
  EXPECT_EQ(seqs(buf.push(pkt(10))), (std::vector<std::uint16_t>{10}));
  EXPECT_EQ(seqs(buf.push(pkt(11))), (std::vector<std::uint16_t>{11}));
  EXPECT_EQ(buf.buffered(), 0u);
}

TEST(ReorderBuffer, HoldsUntilGapFilled) {
  ReorderBuffer buf;
  buf.push(pkt(1));
  EXPECT_TRUE(buf.push(pkt(3)).empty());
  EXPECT_EQ(buf.buffered(), 1u);
  EXPECT_EQ(seqs(buf.push(pkt(2))), (std::vector<std::uint16_t>{2, 3}));
}

TEST(ReorderBuffer, LatePacketDropped) {
  ReorderBuffer buf;
  buf.push(pkt(5));
  buf.push(pkt(6));
  EXPECT_TRUE(buf.push(pkt(5)).empty());  // duplicate of delivered
  EXPECT_EQ(buf.dropped_late(), 1u);
}

TEST(ReorderBuffer, DuplicateHeldPacketDropped) {
  ReorderBuffer buf;
  buf.push(pkt(1));
  buf.push(pkt(3));
  buf.push(pkt(3));
  EXPECT_EQ(buf.dropped_late(), 1u);
}

TEST(ReorderBuffer, SkipGapAbandonsMissing) {
  ReorderBuffer buf;
  buf.push(pkt(1));
  buf.push(pkt(3));
  buf.push(pkt(4));
  auto flushed = buf.skip_gap();
  EXPECT_EQ(seqs(flushed), (std::vector<std::uint16_t>{3, 4}));
  EXPECT_EQ(buf.gaps_skipped(), 1u);
  // Cursor advanced past the gap.
  EXPECT_EQ(seqs(buf.push(pkt(5))), (std::vector<std::uint16_t>{5}));
}

TEST(ReorderBuffer, AutoSkipAtMaxHold) {
  ReorderBuffer buf(4);
  buf.push(pkt(0));
  // Packet 1 missing; pile up 2..6 (5 held > max_hold 4 triggers skip).
  buf.push(pkt(2));
  buf.push(pkt(3));
  buf.push(pkt(4));
  buf.push(pkt(5));
  auto out = buf.push(pkt(6));
  EXPECT_EQ(seqs(out), (std::vector<std::uint16_t>{2, 3, 4, 5, 6}));
  EXPECT_EQ(buf.gaps_skipped(), 1u);
}

TEST(ReorderBuffer, ExpectedSequenceTracksCursor) {
  ReorderBuffer buf;
  EXPECT_FALSE(buf.expected_sequence().has_value());
  buf.push(pkt(100));
  EXPECT_EQ(buf.expected_sequence(), 101);
}

TEST(ReorderBuffer, WrapAroundDelivery) {
  ReorderBuffer buf;
  buf.push(pkt(65534));
  EXPECT_TRUE(buf.push(pkt(0)).empty());  // 65535 missing
  auto out = buf.push(pkt(65535));
  EXPECT_EQ(seqs(out), (std::vector<std::uint16_t>{65535, 0}));
}

TEST(ReorderBuffer, ExpireOlderThanFlushesAgedHeadGap) {
  ReorderBuffer buf;
  buf.push(pkt(10), /*now_us=*/1000);
  // 11 lost; 12 and 13 wait behind the gap.
  EXPECT_TRUE(buf.push(pkt(12), 2000).empty());
  EXPECT_TRUE(buf.push(pkt(13), 2500).empty());

  // Cutoff before the oldest held arrival: nothing expires.
  EXPECT_TRUE(buf.expire_older_than(1500).empty());
  EXPECT_EQ(buf.buffered(), 2u);

  // Oldest (arrived at 2000) is now past the cutoff: the gap is abandoned
  // and both held packets flush in order.
  auto out = buf.expire_older_than(3000);
  EXPECT_EQ(seqs(out), (std::vector<std::uint16_t>{12, 13}));
  EXPECT_EQ(buf.gaps_skipped(), 1u);
  EXPECT_EQ(buf.expected_sequence(), 14);
}

TEST(ReorderBuffer, ExpireCrossesMultipleGaps) {
  ReorderBuffer buf;
  buf.push(pkt(1), 100);
  buf.push(pkt(3), 200);   // 2 missing
  buf.push(pkt(6), 300);   // 4,5 missing
  auto out = buf.expire_older_than(1000);
  EXPECT_EQ(seqs(out), (std::vector<std::uint16_t>{3, 6}));
  EXPECT_EQ(buf.gaps_skipped(), 2u);
  EXPECT_TRUE(buf.expire_older_than(1000).empty());  // idempotent when empty
}

TEST(ReorderBuffer, OldestHeldTracksArrivals) {
  ReorderBuffer buf;
  EXPECT_FALSE(buf.oldest_held_us().has_value());
  buf.push(pkt(5), 100);           // delivered immediately, not held
  EXPECT_FALSE(buf.oldest_held_us().has_value());
  buf.push(pkt(8), 900);           // held (6,7 missing)
  buf.push(pkt(7), 400);           // held, older arrival
  EXPECT_EQ(buf.oldest_held_us(), 400u);
}

TEST(ReorderBuffer, AgeBoundCoversSequenceWrapStall) {
  // A gap right before the 16-bit wrap with only a handful of newer
  // packets: the count bound never trips, but the age bound must.
  ReorderBuffer buf(/*max_hold=*/256);
  buf.push(pkt(65533), 100);
  EXPECT_TRUE(buf.push(pkt(65535), 200).empty());  // 65534 lost
  EXPECT_TRUE(buf.push(pkt(0), 300).empty());
  auto out = buf.expire_older_than(500'000);
  EXPECT_EQ(seqs(out), (std::vector<std::uint16_t>{65535, 0}));
  EXPECT_EQ(buf.expected_sequence(), 1);
}

TEST(ReorderBuffer, RandomPermutationDeliversInOrder) {
  Prng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    ReorderBuffer buf(512);
    // A shuffled window of 300 packets starting near wrap.
    std::vector<std::uint16_t> order;
    const std::uint16_t base = 65400;
    for (int i = 0; i < 300; ++i) order.push_back(static_cast<std::uint16_t>(base + i));
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    std::vector<std::uint16_t> delivered;
    for (std::uint16_t s : order) {
      for (auto& p : buf.push(pkt(s))) delivered.push_back(p.sequence);
    }
    // Everything from the first *delivered cursor* onward arrives in order.
    for (std::size_t i = 1; i < delivered.size(); ++i) {
      EXPECT_EQ(static_cast<std::uint16_t>(delivered[i] - delivered[i - 1]), 1u);
    }
    EXPECT_EQ(buf.gaps_skipped(), 0u);
  }
}

}  // namespace
}  // namespace ads
