#include "rtp/retransmission_cache.hpp"

#include <gtest/gtest.h>

#include "buf/buf.hpp"

namespace ads {
namespace {

buf::BufPool& pool() {
  static buf::BufPool p(128);
  return p;
}

PacketView pkt(std::uint16_t seq, std::uint8_t value) {
  buf::BufRef b = pool().acquire(1);
  b.bytes() = {value};
  return PacketView::build(/*marker=*/false, /*payload_type=*/96, seq,
                           /*timestamp=*/0, /*ssrc=*/0x1234, std::move(b),
                           /*offset=*/0, /*length=*/1);
}

PacketView pkt(std::uint16_t seq) {
  return pkt(seq, static_cast<std::uint8_t>(seq));
}

TEST(RetransmissionCache, StoresAndRetrieves) {
  RetransmissionCache cache(10);
  cache.put(pkt(1));
  cache.put(pkt(2));
  const PacketView* got = cache.get(1);
  ASSERT_NE(got, nullptr);
  ASSERT_EQ(got->payload().size(), 1u);
  EXPECT_EQ(got->payload()[0], 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RetransmissionCache, MissReturnsNull) {
  RetransmissionCache cache(10);
  cache.put(pkt(1));
  EXPECT_EQ(cache.get(99), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RetransmissionCache, EvictsOldestBeyondCapacity) {
  RetransmissionCache cache(3);
  for (std::uint16_t s = 0; s < 5; ++s) cache.put(pkt(s));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.get(0), nullptr);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
}

TEST(RetransmissionCache, ReinsertSameSequenceUpdates) {
  RetransmissionCache cache(4);
  cache.put(pkt(7));
  cache.put(pkt(7, 42));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.get(7), nullptr);
  EXPECT_EQ(cache.get(7)->payload()[0], 42u);
}

TEST(RetransmissionCache, ZeroCapacityStoresNothing) {
  RetransmissionCache cache(0);
  cache.put(pkt(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
}

TEST(RetransmissionCache, SequenceWrapKeysDistinct) {
  RetransmissionCache cache(10);
  cache.put(pkt(65535));
  cache.put(pkt(0));
  EXPECT_NE(cache.get(65535), nullptr);
  EXPECT_NE(cache.get(0), nullptr);
}

TEST(RetransmissionCache, CountsEvictions) {
  RetransmissionCache cache(3);
  for (std::uint16_t s = 0; s < 5; ++s) cache.put(pkt(s));
  EXPECT_EQ(cache.evictions(), 2u);
  // Re-inserting an existing sequence replaces in place — no eviction.
  cache.put(pkt(4));
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(RetransmissionCache, SharesPayloadBufferWithCaller) {
  // Caching a packet must not copy the payload: the cached view shares the
  // caller's buffer, and eviction releases the reference.
  buf::BufRef b = pool().acquire(4);
  b.bytes() = {1, 2, 3, 4};
  PacketView v = PacketView::build(true, 96, 100, 0, 1, b, 0, 4);
  EXPECT_EQ(b.refcount(), 2u);  // b + v

  RetransmissionCache cache(2);
  cache.put(v);
  EXPECT_EQ(b.refcount(), 3u);  // b + v + cached copy
  ASSERT_NE(cache.get(100), nullptr);
  EXPECT_EQ(cache.get(100)->payload().data(), b.view().data());

  cache.put(pkt(101));
  cache.put(pkt(102));  // evicts seq 100
  EXPECT_EQ(cache.get(100), nullptr);
  EXPECT_EQ(b.refcount(), 2u);
}

TEST(RetransmissionCache, EvictionOrderSurvivesSequenceWrap) {
  // Insertion order, not numeric order, drives eviction: streaming across
  // the 16-bit wrap must evict 65534, 65535 (the oldest), never the
  // numerically-small post-wrap sequences.
  RetransmissionCache cache(8);
  std::uint16_t seq = 65534;
  for (int i = 0; i < 10; ++i) cache.put(pkt(seq++));  // 65534..65535,0..7
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.get(65534), nullptr);
  EXPECT_EQ(cache.get(65535), nullptr);
  for (std::uint16_t s = 0; s < 8; ++s) {
    EXPECT_NE(cache.get(s), nullptr) << "seq " << s;
  }
}

TEST(RetransmissionCache, LongWrappingStreamRetainsExactlyNewest) {
  // 70'000 packets walk the full sequence space and wrap: the cache must
  // end up holding exactly the last `capacity` sequences sent.
  constexpr std::size_t kCapacity = 64;
  RetransmissionCache cache(kCapacity);
  std::uint16_t seq = 0;
  for (int i = 0; i < 70'000; ++i) cache.put(pkt(seq++));
  EXPECT_EQ(cache.size(), kCapacity);
  EXPECT_EQ(cache.evictions(), 70'000u - kCapacity);
  const std::uint16_t last = static_cast<std::uint16_t>(69'999);
  for (std::size_t back = 0; back < kCapacity; ++back) {
    const std::uint16_t s = static_cast<std::uint16_t>(last - back);
    EXPECT_NE(cache.get(s), nullptr) << "seq " << s;
  }
  // The one evicted just before the retained window is gone.
  EXPECT_EQ(cache.get(static_cast<std::uint16_t>(last - kCapacity)), nullptr);
}

}  // namespace
}  // namespace ads
