#include "rtp/retransmission_cache.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

RtpPacket pkt(std::uint16_t seq) {
  RtpPacket p;
  p.sequence = seq;
  p.payload = {static_cast<std::uint8_t>(seq)};
  return p;
}

TEST(RetransmissionCache, StoresAndRetrieves) {
  RetransmissionCache cache(10);
  cache.put(pkt(1));
  cache.put(pkt(2));
  auto got = cache.get(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (Bytes{1}));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RetransmissionCache, MissReturnsNullopt) {
  RetransmissionCache cache(10);
  cache.put(pkt(1));
  EXPECT_FALSE(cache.get(99).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RetransmissionCache, EvictsOldestBeyondCapacity) {
  RetransmissionCache cache(3);
  for (std::uint16_t s = 0; s < 5; ++s) cache.put(pkt(s));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.get(0).has_value());
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
}

TEST(RetransmissionCache, ReinsertSameSequenceUpdates) {
  RetransmissionCache cache(4);
  cache.put(pkt(7));
  RtpPacket updated = pkt(7);
  updated.payload = {42};
  cache.put(updated);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(7)->payload, (Bytes{42}));
}

TEST(RetransmissionCache, ZeroCapacityStoresNothing) {
  RetransmissionCache cache(0);
  cache.put(pkt(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(RetransmissionCache, SequenceWrapKeysDistinct) {
  RetransmissionCache cache(10);
  cache.put(pkt(65535));
  cache.put(pkt(0));
  EXPECT_TRUE(cache.get(65535).has_value());
  EXPECT_TRUE(cache.get(0).has_value());
}

TEST(RetransmissionCache, CountsEvictions) {
  RetransmissionCache cache(3);
  for (std::uint16_t s = 0; s < 5; ++s) cache.put(pkt(s));
  EXPECT_EQ(cache.evictions(), 2u);
  // Re-inserting an existing sequence replaces in place — no eviction.
  cache.put(pkt(4));
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(RetransmissionCache, EvictionOrderSurvivesSequenceWrap) {
  // Insertion order, not numeric order, drives eviction: streaming across
  // the 16-bit wrap must evict 65534, 65535 (the oldest), never the
  // numerically-small post-wrap sequences.
  RetransmissionCache cache(8);
  std::uint16_t seq = 65534;
  for (int i = 0; i < 10; ++i) cache.put(pkt(seq++));  // 65534..65535,0..7
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_FALSE(cache.get(65534).has_value());
  EXPECT_FALSE(cache.get(65535).has_value());
  for (std::uint16_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(cache.get(s).has_value()) << "seq " << s;
  }
}

TEST(RetransmissionCache, LongWrappingStreamRetainsExactlyNewest) {
  // 70'000 packets walk the full sequence space and wrap: the cache must
  // end up holding exactly the last `capacity` sequences sent.
  constexpr std::size_t kCapacity = 64;
  RetransmissionCache cache(kCapacity);
  std::uint16_t seq = 0;
  for (int i = 0; i < 70'000; ++i) cache.put(pkt(seq++));
  EXPECT_EQ(cache.size(), kCapacity);
  EXPECT_EQ(cache.evictions(), 70'000u - kCapacity);
  const std::uint16_t last = static_cast<std::uint16_t>(69'999);
  for (std::size_t back = 0; back < kCapacity; ++back) {
    const std::uint16_t s = static_cast<std::uint16_t>(last - back);
    EXPECT_TRUE(cache.get(s).has_value()) << "seq " << s;
  }
  // The one evicted just before the retained window is gone.
  EXPECT_FALSE(
      cache.get(static_cast<std::uint16_t>(last - kCapacity)).has_value());
}

}  // namespace
}  // namespace ads
