#include "rtp/retransmission_cache.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

RtpPacket pkt(std::uint16_t seq) {
  RtpPacket p;
  p.sequence = seq;
  p.payload = {static_cast<std::uint8_t>(seq)};
  return p;
}

TEST(RetransmissionCache, StoresAndRetrieves) {
  RetransmissionCache cache(10);
  cache.put(pkt(1));
  cache.put(pkt(2));
  auto got = cache.get(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (Bytes{1}));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RetransmissionCache, MissReturnsNullopt) {
  RetransmissionCache cache(10);
  cache.put(pkt(1));
  EXPECT_FALSE(cache.get(99).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RetransmissionCache, EvictsOldestBeyondCapacity) {
  RetransmissionCache cache(3);
  for (std::uint16_t s = 0; s < 5; ++s) cache.put(pkt(s));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.get(0).has_value());
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
}

TEST(RetransmissionCache, ReinsertSameSequenceUpdates) {
  RetransmissionCache cache(4);
  cache.put(pkt(7));
  RtpPacket updated = pkt(7);
  updated.payload = {42};
  cache.put(updated);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(7)->payload, (Bytes{42}));
}

TEST(RetransmissionCache, ZeroCapacityStoresNothing) {
  RetransmissionCache cache(0);
  cache.put(pkt(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(RetransmissionCache, SequenceWrapKeysDistinct) {
  RetransmissionCache cache(10);
  cache.put(pkt(65535));
  cache.put(pkt(0));
  EXPECT_TRUE(cache.get(65535).has_value());
  EXPECT_TRUE(cache.get(0).has_value());
}

}  // namespace
}  // namespace ads
