#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace ads::telemetry {
namespace {

Snapshot sample_snapshot() {
  MetricsRegistry reg;
  reg.counter("ah.frames").add(3);
  reg.counter("net.udp.sent").add(10);
  reg.gauge("cache.bytes").set(-1);
  reg.histogram("lat_us", {10, 100}).observe(5);
  reg.histogram("lat_us", {}).observe(50);
  reg.histogram("lat_us", {}).observe(5000);
  Snapshot snap = reg.snapshot();
  snap.spans.push_back(SpanRecord{"ah.tick", 100, 250, 0});
  return snap;
}

TEST(ExportJson, FullObjectShape) {
  const std::string json = to_json(sample_snapshot());
  EXPECT_EQ(json,
            "{\"counters\": {\"ah.frames\": 3, \"net.udp.sent\": 10}, "
            "\"gauges\": {\"cache.bytes\": -1}, "
            "\"histograms\": {\"lat_us\": {\"bounds\": [10, 100], "
            "\"counts\": [1, 1, 1], \"count\": 3, \"sum\": 5055}}, "
            "\"spans\": [{\"name\": \"ah.tick\", \"begin_us\": 100, "
            "\"end_us\": 250, \"seq\": 0}]}");
}

TEST(ExportJson, EmptySnapshot) {
  EXPECT_EQ(to_json(Snapshot{}),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, "
            "\"spans\": []}");
}

TEST(ExportJson, EscapesNames) {
  Snapshot snap;
  snap.counters["he\"llo\\x"] = 1;
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"he\\\"llo\\\\x\": 1"), std::string::npos);
}

TEST(ExportJson, EqualSnapshotsSerialiseIdentically) {
  // Keys come out of std::map sorted, so two snapshots with the same data
  // — however it was inserted — produce byte-identical JSON. This is what
  // the determinism tests diff.
  Snapshot a, b;
  a.counters["x"] = 1;
  a.counters["a"] = 2;
  b.counters["a"] = 2;
  b.counters["x"] = 1;
  EXPECT_EQ(to_json(a), to_json(b));
}

TEST(ExportJsonLines, OneMetricPerLine) {
  const std::string lines = to_json_lines(sample_snapshot());
  EXPECT_NE(lines.find("{\"type\": \"counter\", \"name\": \"ah.frames\", "
                       "\"value\": 3}\n"),
            std::string::npos);
  EXPECT_NE(lines.find("{\"type\": \"gauge\", \"name\": \"cache.bytes\", "
                       "\"value\": -1}\n"),
            std::string::npos);
  EXPECT_NE(lines.find("{\"type\": \"histogram\", \"name\": \"lat_us\""),
            std::string::npos);
  EXPECT_NE(lines.find("{\"type\": \"span\""), std::string::npos);
  // Every line is terminated; count matches 2 counters + 1 gauge + 1
  // histogram + 1 span.
  std::size_t newlines = 0;
  for (const char c : lines) newlines += c == '\n';
  EXPECT_EQ(newlines, 5u);
  EXPECT_EQ(lines.back(), '\n');
}

TEST(ExportPrometheus, NameSanitisation) {
  EXPECT_EQ(prometheus_name("net.udp.sent"), "net_udp_sent");
  EXPECT_EQ(prometheus_name("ok_name:sub"), "ok_name:sub");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name("sp ace-dash"), "sp_ace_dash");
}

TEST(ExportPrometheus, CountersGetTotalSuffix) {
  const std::string text = to_prometheus(sample_snapshot());
  EXPECT_NE(text.find("# TYPE ah_frames_total counter\nah_frames_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cache_bytes gauge\ncache_bytes -1\n"),
            std::string::npos);
}

TEST(ExportPrometheus, HistogramBucketsAreCumulative) {
  const std::string text = to_prometheus(sample_snapshot());
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 5055\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 3\n"), std::string::npos);
  // Spans are not exported to Prometheus.
  EXPECT_EQ(text.find("ah.tick"), std::string::npos);
}

}  // namespace
}  // namespace ads::telemetry
