#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ads::telemetry {
namespace {

TEST(Counter, AddSetResetValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SignedLevels) {
  Gauge g;
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
  g.add(15);
  EXPECT_EQ(g.value(), 10);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketsAreInclusiveUpperBounds) {
  Histogram h({10, 100, 1000});
  h.observe(0);     // <= 10
  h.observe(10);    // <= 10 (inclusive)
  h.observe(11);    // <= 100
  h.observe(1000);  // <= 1000
  h.observe(1001);  // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 1000 + 1001);
}

TEST(Histogram, SortsAndDedupsBounds) {
  Histogram h({100, 10, 100, 10});
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(h.bounds()[0], 10u);
  EXPECT_EQ(h.bounds()[1], 100u);
}

TEST(Histogram, Reset) {
  Histogram h({10});
  h.observe(5);
  h.observe(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  for (std::uint64_t c : h.counts()) EXPECT_EQ(c, 0u);
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);

  Histogram& h1 = reg.histogram("h", {1, 2, 3});
  // Later callers share the first registration; their bounds are ignored.
  Histogram& h2 = reg.histogram("h", {99});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(MetricsRegistry, SnapshotCopiesEverything) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(-2);
  reg.histogram("h", {10}).observe(4);

  Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 5u);
  EXPECT_EQ(snap.gauge("g"), -2);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.histograms.at("h").sum, 4u);

  // The snapshot is a copy: later increments don't affect it.
  reg.counter("c").add(100);
  EXPECT_EQ(snap.counter("c"), 5u);
  EXPECT_EQ(snap.counter("missing", 77), 77u);
  EXPECT_FALSE(snap.has_counter("missing"));
}

TEST(MetricsRegistry, CollectorsRunAtSnapshotTime) {
  MetricsRegistry reg;
  std::uint64_t external_total = 0;
  int owner = 0;
  reg.add_collector(&owner,
                    [&] { reg.counter("ext").set(external_total); });

  external_total = 9;
  EXPECT_EQ(reg.snapshot().counter("ext"), 9u);
  external_total = 12;
  EXPECT_EQ(reg.snapshot().counter("ext"), 12u);

  // Removed collectors stop publishing; the metric keeps its last value.
  reg.remove_collectors(&owner);
  external_total = 99;
  EXPECT_EQ(reg.snapshot().counter("ext"), 12u);
}

TEST(MetricsRegistry, RemoveCollectorsIsKeyedByOwner) {
  MetricsRegistry reg;
  int a = 0, b = 0;
  reg.add_collector(&a, [&reg] { reg.counter("a").add(); });
  reg.add_collector(&b, [&reg] { reg.counter("b").add(); });
  reg.remove_collectors(&a);
  Snapshot snap = reg.snapshot();
  EXPECT_FALSE(snap.has_counter("a"));
  EXPECT_EQ(snap.counter("b"), 1u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(5);
  reg.gauge("g").set(3);
  reg.histogram("h", {10}).observe(1);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(&reg.counter("c"), &c);  // same object, still registered
  EXPECT_EQ(reg.gauge("g").value(), 0);
  EXPECT_EQ(reg.histogram("h", {}).count(), 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreNotLost) {
  // Relaxed atomics still guarantee no lost updates — the property the
  // worker-pool encode path relies on.
  MetricsRegistry reg;
  Counter& c = reg.counter("hot");
  Histogram& h = reg.histogram("lat", {10, 100});
  constexpr int kThreads = 4;
  constexpr int kPer = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPer; ++i) {
        c.add();
        h.observe(static_cast<std::uint64_t>(i % 200));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace ads::telemetry
