#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

namespace ads::telemetry {
namespace {

TEST(TraceRing, DisabledByDefault) {
  TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  {
    ScopedSpan span(ring, "noop");  // must be a no-op, not a crash
  }
  EXPECT_TRUE(ring.spans().empty());
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(TraceRing, RecordsInCompletionOrder) {
  TraceRing ring;
  std::uint64_t clock = 0;
  ring.enable(8, [&clock] { return clock; });

  {
    clock = 10;
    ScopedSpan outer(ring, "outer");
    {
      clock = 20;
      ScopedSpan inner(ring, "inner");
      clock = 30;
    }  // inner records [20, 30]
    clock = 40;
  }  // outer records [10, 40]

  const auto spans = ring.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].begin_us, 20u);
  EXPECT_EQ(spans[0].end_us, 30u);
  EXPECT_EQ(spans[0].seq, 0u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].begin_us, 10u);
  EXPECT_EQ(spans[1].end_us, 40u);
  EXPECT_EQ(spans[1].seq, 1u);
}

TEST(TraceRing, WrapKeepsNewestAndGlobalSeq) {
  TraceRing ring;
  std::uint64_t clock = 0;
  ring.enable(3, [&clock] { return clock; });
  for (int i = 0; i < 5; ++i) {
    clock = static_cast<std::uint64_t>(i);
    ring.record("s", clock, clock);
  }
  const auto spans = ring.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest-first: spans 2, 3, 4 survive with their original seq numbers.
  EXPECT_EQ(spans[0].seq, 2u);
  EXPECT_EQ(spans[1].seq, 3u);
  EXPECT_EQ(spans[2].seq, 4u);
  EXPECT_EQ(spans[0].begin_us, 2u);
  EXPECT_EQ(ring.total_recorded(), 5u);
}

TEST(TraceRing, DisableStopsRecordingAndDropsSpans) {
  TraceRing ring;
  ring.enable(4, [] { return std::uint64_t{1}; });
  ring.record("a", 0, 1);
  ring.disable();
  EXPECT_FALSE(ring.enabled());
  EXPECT_TRUE(ring.spans().empty());  // disable releases the ring
  ring.record("b", 2, 3);             // dropped
  // A span constructed while disabled stays disarmed even if the ring is
  // re-enabled before it dies.
  {
    ScopedSpan span(ring, "late");
    ring.enable(4, [] { return std::uint64_t{9}; });
  }
  EXPECT_TRUE(ring.spans().empty());
  ring.record("c", 4, 5);
  ASSERT_EQ(ring.spans().size(), 1u);
  EXPECT_STREQ(ring.spans()[0].name, "c");
}

TEST(TraceRing, ClearEmptiesButStaysEnabled) {
  TraceRing ring;
  ring.enable(4, [] { return std::uint64_t{0}; });
  ring.record("a", 0, 1);
  ring.clear();
  EXPECT_TRUE(ring.enabled());
  EXPECT_TRUE(ring.spans().empty());
  ring.record("b", 1, 2);
  ASSERT_EQ(ring.spans().size(), 1u);
  EXPECT_STREQ(ring.spans()[0].name, "b");
}

TEST(TraceRing, DeterministicUnderVirtualClock) {
  // Two identical runs over a virtual clock produce identical spans — the
  // property AppHost traces inherit from EventLoop::now().
  auto run = [] {
    TraceRing ring;
    std::uint64_t clock = 0;
    ring.enable(16, [&clock] { return clock; });
    for (int i = 0; i < 10; ++i) {
      clock += 7;
      ScopedSpan span(ring, "tick");
      clock += 3;
    }
    return ring.spans();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin_us, b[i].begin_us);
    EXPECT_EQ(a[i].end_us, b[i].end_us);
    EXPECT_EQ(a[i].seq, b[i].seq);
  }
}

}  // namespace
}  // namespace ads::telemetry
