#include "wm/window_manager.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

/// The draft's Figure 2 scenario: windows A, B, C with A and B in one
/// process group.
struct Figure2 : ::testing::Test {
  WindowManager wm;
  WindowId a = 0;
  WindowId b = 0;
  WindowId c = 0;

  void SetUp() override {
    a = wm.create({220, 150, 350, 450}, 1);
    c = wm.create({850, 320, 160, 150}, 2);
    b = wm.create({450, 400, 350, 300}, 1);
    // Stacking bottom→top is creation order: A, C, B (B overlaps A).
  }
};

TEST_F(Figure2, IdsAreSequentialFromOne) {
  EXPECT_EQ(a, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(b, 3);
}

TEST_F(Figure2, StackingOrderBottomFirst) {
  const auto& order = wm.stacking_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].id, a);
  EXPECT_EQ(order[1].id, c);
  EXPECT_EQ(order[2].id, b);
}

TEST_F(Figure2, RaiseAndLowerRestack) {
  wm.raise(a);
  EXPECT_EQ(wm.stacking_order().back().id, a);
  wm.lower(a);
  EXPECT_EQ(wm.stacking_order().front().id, a);
}

TEST_F(Figure2, CloseRemoves) {
  EXPECT_TRUE(wm.close(c));
  EXPECT_FALSE(wm.exists(c));
  EXPECT_FALSE(wm.close(c));
  EXPECT_EQ(wm.count(), 2u);
}

TEST_F(Figure2, MoveAndResizeUpdateFrame) {
  wm.move(a, {10, 20});
  wm.resize(a, 100, 200);
  const Window* w = wm.find(a);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->frame, (Rect{10, 20, 100, 200}));
}

TEST_F(Figure2, RevisionBumpsOnEveryStateChange) {
  const auto r0 = wm.revision();
  wm.move(a, {0, 0});
  const auto r1 = wm.revision();
  EXPECT_GT(r1, r0);
  wm.move(a, {0, 0});  // no-op: same position
  EXPECT_EQ(wm.revision(), r1);
  wm.resize(a, 1, 1);
  wm.raise(a);
  wm.set_group(a, 7);
  EXPECT_GT(wm.revision(), r1 + 2);
}

TEST_F(Figure2, DesktopModeSharesEverything) {
  EXPECT_EQ(wm.shared_windows().size(), 3u);
  for (const Window& w : wm.stacking_order()) EXPECT_TRUE(wm.is_shared(w));
}

TEST_F(Figure2, ApplicationSharingFiltersByGroup) {
  wm.share_group(1);  // A and B only
  const auto shared = wm.shared_windows();
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_EQ(shared[0].id, a);
  EXPECT_EQ(shared[1].id, b);
}

TEST_F(Figure2, UnshareGroupRemoves) {
  wm.share_group(1);
  wm.share_group(2);
  EXPECT_EQ(wm.shared_windows().size(), 3u);
  wm.unshare_group(2);
  EXPECT_EQ(wm.shared_windows().size(), 2u);
}

TEST_F(Figure2, VisibleRegionSubtractsWindowsAbove) {
  // B (450,400 350x300) overlaps A (220,150 350x450): A loses the overlap.
  const Region vis = wm.visible_region(a);
  EXPECT_EQ(vis.area(), 350 * 450 - 120 * 200);  // overlap = x:450-570, y:400-600
  EXPECT_TRUE(vis.contains(Point{220, 150}));
  EXPECT_FALSE(vis.contains(Point{500, 450}));  // covered by B
}

TEST_F(Figure2, TopWindowFullyVisible) {
  EXPECT_EQ(wm.visible_region(b).area(), 350 * 300);
}

TEST_F(Figure2, VisibleSharedRegionCoversAllSharedPixels) {
  const Region region = wm.visible_shared_region();
  // Desktop mode: union of all three frames (B's overlap with A counted once).
  EXPECT_EQ(region.area(), 350 * 450 + 160 * 150 + 350 * 300 - 120 * 200);
}

TEST_F(Figure2, NonSharedWindowBlanksOverlap) {
  wm.share_group(1);  // C (group 2) not shared
  wm.raise(c);        // C on top of everything
  wm.move(c, {300, 200});
  // A's visible region must exclude the part C covers.
  const Region vis = wm.visible_region(a);
  EXPECT_FALSE(vis.contains(Point{310, 210}));
  // And the shared export region must not include any C pixels.
  const Region shared = wm.visible_shared_region();
  EXPECT_FALSE(shared.contains(Point{310, 210}));
}

TEST_F(Figure2, HipLegitimacyCheck) {
  // §4.1: only coordinates inside shared windows are legitimate.
  EXPECT_TRUE(wm.point_in_shared_window(Point{230, 160}));   // inside A
  EXPECT_FALSE(wm.point_in_shared_window(Point{10, 10}));    // desktop
  wm.share_group(1);
  EXPECT_FALSE(wm.point_in_shared_window(Point{860, 330}));  // C not shared
  EXPECT_TRUE(wm.point_in_shared_window(Point{500, 450}));   // B
}

TEST_F(Figure2, SharedWindowAtReturnsTopmost) {
  // Point in the A/B overlap belongs to B (on top).
  EXPECT_EQ(wm.shared_window_at(Point{500, 450}), b);
  EXPECT_EQ(wm.shared_window_at(Point{230, 160}), a);
  EXPECT_FALSE(wm.shared_window_at(Point{0, 0}).has_value());
}

TEST_F(Figure2, NonSharedWindowBlocksInputBeneath) {
  wm.share_group(1);
  wm.raise(c);
  wm.move(c, {300, 200});  // C now covers part of A
  // Input at a point covered by non-shared C is rejected even though A is
  // shared underneath.
  EXPECT_FALSE(wm.shared_window_at(Point{310, 210}).has_value());
}

TEST(WindowManagerEdge, OperationsOnUnknownIdFail) {
  WindowManager wm;
  EXPECT_FALSE(wm.move(99, {0, 0}));
  EXPECT_FALSE(wm.resize(99, 1, 1));
  EXPECT_FALSE(wm.raise(99));
  EXPECT_FALSE(wm.lower(99));
  EXPECT_FALSE(wm.set_group(99, 1));
  EXPECT_EQ(wm.find(99), nullptr);
}

TEST(WindowManagerEdge, VisibleRegionOfUnknownWindowEmpty) {
  WindowManager wm;
  EXPECT_TRUE(wm.visible_region(1).empty());
}

TEST(WindowManagerEdge, GroupZeroMeansNoGrouping) {
  WindowManager wm;
  const WindowId w = wm.create({0, 0, 10, 10});
  EXPECT_EQ(wm.find(w)->group, kNoGroup);
}

}  // namespace
}  // namespace ads
