// Golden byte-identity for the downscale kernels (E20 acceptance): every
// compiled SIMD tier of box_halve_row must match the scalar reference
// bit-for-bit — odd widths, width 1, and a full-screen row included — and
// the image-level box_halve/scale_frame pipeline must match a naive
// per-pixel reference so cohort encodes are deterministic across hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "transcode/transcode.hpp"
#include "util/prng.hpp"
#include "util/simd.hpp"

namespace ads {
namespace {

std::vector<std::uint8_t> random_row(Prng& rng, std::int64_t pixels) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(pixels) * 4);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.range(0, 255));
  return out;
}

Image random_image(Prng& rng, std::int64_t w, std::int64_t h) {
  Image img(w, h, kBlack);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      img.set(x, y, Pixel{static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)), 255});
    }
  }
  return img;
}

/// Naive reference: out(x, y) averages the up-to-2x2 source block with
/// edge replication and the kernel's +2 rounding.
Image reference_halve(const Image& src) {
  const std::int64_t ow = (src.width() + 1) / 2;
  const std::int64_t oh = (src.height() + 1) / 2;
  Image out(ow, oh, kBlack);
  auto at = [&src](std::int64_t x, std::int64_t y) {
    return src.at(std::min(x, src.width() - 1), std::min(y, src.height() - 1));
  };
  for (std::int64_t y = 0; y < oh; ++y) {
    for (std::int64_t x = 0; x < ow; ++x) {
      const Pixel p00 = at(2 * x, 2 * y), p10 = at(2 * x + 1, 2 * y);
      const Pixel p01 = at(2 * x, 2 * y + 1), p11 = at(2 * x + 1, 2 * y + 1);
      auto avg = [](int a, int b, int c, int d) {
        return static_cast<std::uint8_t>((a + b + c + d + 2) >> 2);
      };
      out.set(x, y, Pixel{avg(p00.r, p10.r, p01.r, p11.r),
                          avg(p00.g, p10.g, p01.g, p11.g),
                          avg(p00.b, p10.b, p01.b, p11.b),
                          avg(p00.a, p10.a, p01.a, p11.a)});
    }
  }
  return out;
}

TEST(ScalerGolden, EveryTierMatchesScalarRowKernel) {
  Prng rng(0xB0C5);
  // Widths chosen for the failure modes: 1 (degenerate), odd (edge
  // replication), vector-width straddles, and a full-screen 1920 row.
  const std::int64_t widths[] = {1, 2, 3, 5, 7, 8, 15, 16, 17,
                                 31, 33, 63, 64, 65, 639, 1920};
  for (const std::int64_t w : widths) {
    const auto r0 = random_row(rng, w);
    const auto r1 = random_row(rng, w);
    std::vector<std::uint8_t> want(static_cast<std::size_t>((w + 1) / 2) * 4);
    auto got = want;
    simd::box_halve_row_scalar(r0.data(), r1.data(),
                               static_cast<std::size_t>(w), want.data());
    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kSse42, simd::Level::kAvx2}) {
      std::fill(got.begin(), got.end(), 0);
      simd::box_halve_row_at(level, r0.data(), r1.data(),
                             static_cast<std::size_t>(w), got.data());
      ASSERT_EQ(got, want) << "w=" << w << " level="
                           << simd::level_name(level);
    }
    // Odd bottom edge: callers pass r1 == r0; tiers must agree there too.
    simd::box_halve_row_scalar(r0.data(), r0.data(),
                               static_cast<std::size_t>(w), want.data());
    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kSse42, simd::Level::kAvx2}) {
      std::fill(got.begin(), got.end(), 0);
      simd::box_halve_row_at(level, r0.data(), r0.data(),
                             static_cast<std::size_t>(w), got.data());
      ASSERT_EQ(got, want) << "w=" << w << " level="
                           << simd::level_name(level) << " (bottom edge)";
    }
  }
}

TEST(ScalerGolden, BoxHalveMatchesNaiveReference) {
  Prng rng(0x5CA1);
  // Odd and even extents, 1x1, and a full-screen frame.
  const std::pair<std::int64_t, std::int64_t> sizes[] = {
      {1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3}, {17, 9},
      {64, 48}, {101, 75}, {1920, 1080}};
  for (const auto& [w, h] : sizes) {
    const Image src = random_image(rng, w, h);
    const Image got = transcode::box_halve(src);
    const Image want = reference_halve(src);
    ASSERT_EQ(got, want) << w << "x" << h;
  }
}

TEST(ScalerGolden, ScaleFrameIteratesRungsAndCrops) {
  Prng rng(0xD0D0);
  const Image frame = random_image(rng, 101, 75);

  // Rung 2 = two iterated halvings of the whole frame.
  const transcode::OutputGeometry quarter{2, {}, false};
  EXPECT_EQ(transcode::scale_frame(frame, quarter),
            reference_halve(reference_halve(frame)));

  // Viewport: crop first, then halve — including odd crop extents.
  const transcode::OutputGeometry vp{1, {10, 5, 33, 21}, false};
  EXPECT_EQ(transcode::scale_frame(frame, vp),
            reference_halve(frame.crop({10, 5, 33, 21})));

  // Identity returns the pixels untouched.
  EXPECT_EQ(transcode::scale_frame(frame, {}), frame);
}

}  // namespace
}  // namespace ads
