// Unit coverage for the output-geometry transcode stage: SDP token
// round-trips, source-rect resolution, host<->output rect/point mapping
// (cover semantics one way, block-centre the other), and the per-tick
// FrameScaler cache contract.
#include "transcode/transcode.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

using transcode::OutputGeometry;

TEST(GeometryToken, RoundTripsEveryShape) {
  const OutputGeometry shapes[] = {
      {},                                   // identity
      {2, {}, false},                       // quarter rung
      {1, {8, 8, 64, 48}, false},           // half rung + viewport
      {0, {}, true},                        // follow, native
      {3, {100, 50, 320, 240}, true},       // follow with resolved viewport
  };
  for (const OutputGeometry& g : shapes) {
    const auto parsed = transcode::parse_token(transcode::to_token(g));
    ASSERT_TRUE(parsed.has_value()) << transcode::to_token(g);
    EXPECT_EQ(*parsed, g) << transcode::to_token(g);
  }
}

TEST(GeometryToken, RejectsMalformedAndOutOfRange) {
  for (const char* bad :
       {"", "s", "x2", "s2;vx", "s2;v1,2,3", "s1;v1,2,3,4;q", "s99", "s-1"}) {
    EXPECT_FALSE(transcode::parse_token(bad).has_value()) << bad;
  }
  // The deepest advertised rung parses; one past it does not.
  const std::string max = "s" + std::to_string(transcode::kMaxScaleShift);
  EXPECT_TRUE(transcode::parse_token(max).has_value());
  const std::string over = "s" + std::to_string(transcode::kMaxScaleShift + 1);
  EXPECT_FALSE(transcode::parse_token(over).has_value());
}

TEST(Geometry, SourceRectResolvesViewportAgainstFrame) {
  const Rect frame{0, 0, 320, 240};
  EXPECT_EQ(transcode::source_rect({}, frame), frame);
  // Viewport clipped to the frame.
  EXPECT_EQ(transcode::source_rect({0, {300, 220, 100, 100}, false}, frame),
            (Rect{300, 220, 20, 20}));
  // Disjoint / empty viewports degrade to the whole frame, never to nothing.
  EXPECT_EQ(transcode::source_rect({0, {400, 400, 50, 50}, false}, frame), frame);
  EXPECT_EQ(transcode::source_rect({0, {10, 10, 0, 0}, false}, frame), frame);
}

TEST(Geometry, OutputBoundsCeilOddExtents) {
  const Rect frame{0, 0, 101, 75};
  EXPECT_EQ(transcode::output_bounds({1, {}, false}, frame), (Rect{0, 0, 51, 38}));
  EXPECT_EQ(transcode::output_bounds({2, {}, false}, frame), (Rect{0, 0, 26, 19}));
  // Viewport origin moves to (0,0) in output space.
  EXPECT_EQ(transcode::output_bounds({1, {11, 21, 30, 30}, false}, frame),
            (Rect{0, 0, 15, 15}));
}

TEST(Geometry, RectMappingUsesCoverSemantics) {
  const Rect frame{0, 0, 320, 240};
  const OutputGeometry quarter{2, {}, false};
  // A 1-pixel damage rect covers its whole 4x4 block's output pixel...
  EXPECT_EQ(transcode::map_rect_to_output(quarter, frame, {5, 9, 1, 1}),
            (Rect{1, 2, 1, 1}));
  // ...and mapping back returns every source pixel feeding that block.
  EXPECT_EQ(transcode::map_rect_to_host(quarter, frame, {1, 2, 1, 1}),
            (Rect{4, 8, 4, 4}));
  // Straddling a block boundary covers both blocks.
  EXPECT_EQ(transcode::map_rect_to_output(quarter, frame, {3, 0, 2, 1}),
            (Rect{0, 0, 2, 1}));
  // Damage outside a viewport maps to nothing.
  const OutputGeometry vp{0, {100, 100, 50, 50}, false};
  EXPECT_TRUE(transcode::map_rect_to_output(vp, frame, {0, 0, 10, 10}).empty());
}

TEST(Geometry, RoundTripCoversOriginalRect) {
  const Rect frame{0, 0, 317, 201};  // odd extents on purpose
  const OutputGeometry shapes[] = {
      {1, {}, false}, {3, {}, false}, {2, {13, 7, 100, 90}, false}};
  for (const OutputGeometry& g : shapes) {
    const Rect damage{15, 11, 37, 23};
    const Rect out = transcode::map_rect_to_output(g, frame, damage);
    const Rect back = transcode::map_rect_to_host(g, frame, out);
    const Rect clipped = intersect(damage, transcode::source_rect(g, frame));
    EXPECT_TRUE(back.contains(clipped)) << transcode::to_token(g);
  }
}

TEST(Geometry, PointMappingReturnsBlockCentre) {
  const Rect frame{0, 0, 320, 240};
  const OutputGeometry quarter{2, {}, false};
  // Output pixel (3, 5) came from host block [12,16)x[20,24): centre (14, 22).
  EXPECT_EQ(transcode::map_point_to_host(quarter, frame, {3, 5}),
            (Point{14, 22}));
  // With a viewport the offset is added back.
  const OutputGeometry vp{1, {100, 60, 64, 48}, false};
  EXPECT_EQ(transcode::map_point_to_host(vp, frame, {0, 0}), (Point{101, 61}));
  // Out-of-range output points clamp into the source rect.
  const Point clamped = transcode::map_point_to_host(quarter, frame, {1000, 1000});
  EXPECT_TRUE(frame.contains(clamped));
  // Identity is exact.
  EXPECT_EQ(transcode::map_point_to_host({}, frame, {42, 17}), (Point{42, 17}));
  EXPECT_EQ(transcode::map_point_to_output({}, frame, {42, 17}), (Point{42, 17}));
}

TEST(Geometry, DeviceClassing) {
  using transcode::DeviceClass;
  EXPECT_EQ(transcode::device_class({}), DeviceClass::kFull);
  EXPECT_EQ(transcode::device_class({1, {}, false}), DeviceClass::kHalf);
  EXPECT_EQ(transcode::device_class({2, {}, false}), DeviceClass::kQuarter);
  EXPECT_EQ(transcode::device_class({4, {}, false}), DeviceClass::kQuarter);
  EXPECT_EQ(transcode::device_class({0, {1, 1, 5, 5}, false}),
            DeviceClass::kViewport);
  EXPECT_EQ(transcode::device_class({2, {}, true}), DeviceClass::kViewport);
  EXPECT_EQ(transcode::device_class_name(DeviceClass::kViewport), "viewport");
}

TEST(FrameScaler, MaterialisesEachGeometryOncePerTick) {
  transcode::FrameScaler scaler;
  const Image frame(64, 48, Pixel{120, 60, 30, 255});
  const OutputGeometry half{1, {}, false};

  scaler.begin_tick();
  const Image& a = scaler.view(frame, half);
  const Image& b = scaler.view(frame, half);
  EXPECT_EQ(&a, &b);  // same cached entry, reference-stable
  EXPECT_EQ(a.width(), 32);
  EXPECT_EQ(a.height(), 24);
  EXPECT_EQ(scaler.stats().frames_scaled, 1u);
  EXPECT_EQ(scaler.stats().cache_hits, 1u);

  // A second distinct geometry is its own entry; the first stays valid.
  const OutputGeometry quarter{2, {}, false};
  const Image& c = scaler.view(frame, quarter);
  EXPECT_EQ(c.width(), 16);
  EXPECT_EQ(&scaler.view(frame, half), &a);
  EXPECT_EQ(scaler.stats().frames_scaled, 2u);

  // New tick invalidates: the same geometry is rebuilt.
  scaler.begin_tick();
  (void)scaler.view(frame, half);
  EXPECT_EQ(scaler.stats().frames_scaled, 3u);
}

TEST(FrameScaler, IdentityPassesTheLiveFrameThrough) {
  transcode::FrameScaler scaler;
  const Image frame(32, 32, Pixel{1, 2, 3, 255});
  scaler.begin_tick();
  EXPECT_EQ(&scaler.view(frame, {}), &frame);
  EXPECT_EQ(scaler.stats().frames_scaled, 0u);
}

}  // namespace
}  // namespace ads
