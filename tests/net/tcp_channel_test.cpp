#include "net/tcp_channel.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "telemetry/telemetry.hpp"

namespace ads {
namespace {

TEST(TcpChannel, DeliversInOrderAndIntact) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 1'000'000;
  opts.delay_us = 1000;
  TcpChannel ch(loop, opts);
  Bytes received;
  ch.set_receiver([&](Bytes d) { received.insert(received.end(), d.begin(), d.end()); });
  ch.send(Bytes{1, 2, 3});
  ch.send(Bytes{4, 5});
  loop.run();
  EXPECT_EQ(received, (Bytes{1, 2, 3, 4, 5}));
}

TEST(TcpChannel, SerialisationDelayMatchesBandwidth) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;  // 1000 B/s
  opts.delay_us = 10'000;
  TcpChannel ch(loop, opts);
  SimTime arrival = 0;
  ch.set_receiver([&](Bytes) { arrival = loop.now(); });
  ch.send(Bytes(1000, 0));  // 1 second to serialise
  loop.run();
  EXPECT_EQ(arrival, 1'000'000u + 10'000u);
}

TEST(TcpChannel, PartialWriteWhenBufferFull) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;
  opts.send_buffer_bytes = 1000;
  TcpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});
  const std::size_t first = ch.send(Bytes(800, 1));
  EXPECT_EQ(first, 800u);
  const std::size_t second = ch.send(Bytes(800, 2));
  EXPECT_LT(second, 800u);
  EXPECT_EQ(ch.stats().partial_writes, 1u);
}

TEST(TcpChannel, BacklogDrainsOverTime) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;  // 1000 B/s
  opts.send_buffer_bytes = 10'000;
  TcpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});
  ch.send(Bytes(1000, 0));
  EXPECT_GT(ch.backlog_bytes(), 900u);
  loop.run_until(500'000);  // half the serialisation time
  EXPECT_NEAR(static_cast<double>(ch.backlog_bytes()), 500.0, 20.0);
  loop.run_until(2'000'000);
  EXPECT_EQ(ch.backlog_bytes(), 0u);
}

TEST(TcpChannel, ZeroBacklogMeansWritable) {
  EventLoop loop;
  TcpChannel ch(loop, {});
  EXPECT_EQ(ch.backlog_bytes(), 0u);
  EXPECT_EQ(ch.free_space(), TcpChannelOptions{}.send_buffer_bytes);
}

TEST(TcpChannel, ByteAccounting) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.send_buffer_bytes = 100;
  TcpChannel ch(loop, opts);
  std::size_t delivered = 0;
  ch.set_receiver([&](Bytes d) { delivered += d.size(); });
  ch.send(Bytes(60, 0));
  ch.send(Bytes(60, 0));  // only 40 fit
  loop.run();
  EXPECT_EQ(ch.stats().bytes_offered, 120u);
  EXPECT_EQ(ch.stats().bytes_accepted, 100u);
  EXPECT_EQ(delivered, 100u);
}

TEST(TcpChannel, ManySmallWritesAllArrive) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 10'000'000;
  TcpChannel ch(loop, opts);
  std::size_t total = 0;
  ch.set_receiver([&](Bytes d) { total += d.size(); });
  std::size_t sent = 0;
  for (int i = 0; i < 500; ++i) {
    sent += ch.send(Bytes(37, static_cast<std::uint8_t>(i)));
    loop.run_until(loop.now() + 1000);
  }
  loop.run();
  EXPECT_EQ(total, sent);
  EXPECT_EQ(sent, 500u * 37u);
}

TEST(TcpChannel, StallAcceptsNothingButDrainsAcceptedData) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;  // 1000 B/s
  TcpChannel ch(loop, opts);
  std::size_t delivered = 0;
  ch.set_receiver([&](Bytes d) { delivered += d.size(); });
  EXPECT_EQ(ch.send(Bytes(500, 1)), 500u);
  ch.set_stalled(true);
  EXPECT_EQ(ch.send(Bytes(100, 2)), 0u);  // zero-window: nothing accepted
  EXPECT_GT(ch.stats().partial_writes, 0u);
  loop.run();
  EXPECT_EQ(delivered, 500u);  // pre-stall data still clocked out
  ch.set_stalled(false);
  EXPECT_EQ(ch.send(Bytes(100, 3)), 100u);
  loop.run();
  EXPECT_EQ(delivered, 600u);
}

TEST(TcpChannel, DropLosesInFlightAndRefusesLaterSends) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;
  opts.delay_us = 50'000;
  TcpChannel ch(loop, opts);
  std::size_t delivered = 0;
  ch.set_receiver([&](Bytes d) { delivered += d.size(); });
  ch.send(Bytes(1000, 1));          // needs 1 s to serialise
  loop.at(100'000, [&] { ch.drop(); });
  loop.run();
  EXPECT_TRUE(ch.down());
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(ch.stats().bytes_lost_on_drop, 1000u);
  EXPECT_EQ(ch.send(Bytes(10, 2)), 0u);
  EXPECT_EQ(ch.backlog_bytes(), 0u);
  loop.run();
  EXPECT_EQ(delivered, 0u);
}

TEST(TcpChannel, BacklogGaugeClearedOnTeardown) {
  // The net.tcp.backlog gauge is shared across channels; a dying channel
  // must withdraw exactly its own published share.
  EventLoop loop;
  telemetry::Telemetry tel;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;
  opts.telemetry = &tel;
  {
    TcpChannel keeper(loop, opts);
    keeper.set_receiver([](Bytes) {});
    keeper.send(Bytes(300, 1));
    {
      TcpChannel doomed(loop, opts);
      doomed.set_receiver([](Bytes) {});
      doomed.send(Bytes(800, 2));
      EXPECT_GT(tel.metrics.snapshot().gauge("net.tcp.backlog"), 0);
      const std::int64_t with_both = tel.metrics.snapshot().gauge("net.tcp.backlog");
      EXPECT_GT(with_both, 300);  // both channels' unsent bytes counted
    }
    // Only the keeper's share remains.
    const std::int64_t after = tel.metrics.snapshot().gauge("net.tcp.backlog");
    EXPECT_GT(after, 0);
    EXPECT_LE(after, 301);
  }
  EXPECT_EQ(tel.metrics.snapshot().gauge("net.tcp.backlog"), 0);
}

TEST(TcpChannel, BacklogGaugeClearedOnDrop) {
  EventLoop loop;
  telemetry::Telemetry tel;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;
  opts.telemetry = &tel;
  TcpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});
  ch.send(Bytes(500, 1));
  EXPECT_GT(tel.metrics.snapshot().gauge("net.tcp.backlog"), 0);
  ch.drop();
  EXPECT_EQ(tel.metrics.snapshot().gauge("net.tcp.backlog"), 0);
}

TEST(TcpChannel, SendGatherMatchesSendOnConcatenatedBytes) {
  // Differential: offering {a, b, c} in one gather call must be
  // observationally identical to send() on the concatenation — same accepted
  // counts, same partial-write behaviour (including an acceptance boundary
  // that lands mid-part), same delivered stream, same stats.
  TcpChannelOptions opts;
  opts.bandwidth_bps = 8000;       // 1000 B/s: backlog builds quickly
  opts.send_buffer_bytes = 1024;   // forces partial acceptance mid-part
  opts.delay_us = 2000;

  struct Outcome {
    Bytes delivered;
    std::vector<std::size_t> accepted;
    std::uint64_t offered = 0;
    std::uint64_t accepted_bytes = 0;
    std::uint64_t delivered_bytes = 0;
    std::uint64_t partials = 0;
    bool operator==(const Outcome&) const = default;
  };

  auto make_parts = [](std::uint8_t round) {
    // Three parts of awkward sizes, one of them empty every third round.
    std::vector<Bytes> parts;
    parts.push_back(Bytes(37 + round * 5, round));
    parts.push_back(Bytes(round % 3 == 0 ? 0 : 301,
                          static_cast<std::uint8_t>(round + 100)));
    parts.push_back(Bytes(129, static_cast<std::uint8_t>(round + 200)));
    return parts;
  };

  auto run = [&](bool gathered) {
    EventLoop loop;
    TcpChannel ch(loop, opts);
    Outcome out;
    ch.set_receiver([&](Bytes d) {
      out.delivered.insert(out.delivered.end(), d.begin(), d.end());
    });
    for (std::uint8_t round = 0; round < 12; ++round) {
      const std::vector<Bytes> parts = make_parts(round);
      if (gathered) {
        std::vector<BytesView> views;
        for (const Bytes& p : parts) views.emplace_back(p);
        out.accepted.push_back(ch.send_gather(views));
      } else {
        Bytes concat;
        for (const Bytes& p : parts)
          concat.insert(concat.end(), p.begin(), p.end());
        out.accepted.push_back(ch.send(concat));
      }
      // Drain a little between rounds so acceptance boundaries move around.
      loop.run_until(loop.now() + 150'000);
    }
    loop.run();
    out.offered = ch.stats().bytes_offered;
    out.accepted_bytes = ch.stats().bytes_accepted;
    out.delivered_bytes = ch.stats().bytes_delivered;
    out.partials = ch.stats().partial_writes;
    return out;
  };

  const Outcome gather = run(true);
  const Outcome contiguous = run(false);
  EXPECT_TRUE(gather == contiguous);
  EXPECT_GT(gather.partials, 0u);  // mid-part boundaries actually exercised
  // At least one round was cut off strictly inside a part (not at a part
  // boundary): some accepted count falls inside the middle part's range.
  bool mid_part = false;
  for (std::size_t i = 0; i < gather.accepted.size(); ++i) {
    const auto parts = make_parts(static_cast<std::uint8_t>(i));
    const std::size_t a = gather.accepted[i];
    if (a > parts[0].size() && a < parts[0].size() + parts[1].size()) {
      mid_part = true;
    }
  }
  EXPECT_TRUE(mid_part);
}

TEST(TcpChannel, SendGatherEmptyPartsAreNoOp) {
  EventLoop loop;
  TcpChannel ch(loop, {});
  ch.set_receiver([](Bytes) {});
  EXPECT_EQ(ch.send_gather({}), 0u);
  const BytesView none[] = {BytesView{}, BytesView{}};
  EXPECT_EQ(ch.send_gather(none), 0u);
  EXPECT_EQ(ch.stats().bytes_offered, 0u);
  EXPECT_EQ(ch.stats().partial_writes, 0u);
  EXPECT_EQ(ch.backlog_bytes(), 0u);
}

}  // namespace
}  // namespace ads
