#include "net/event_loop.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(300, [&] { order.push_back(3); });
  loop.at(100, [&] { order.push_back(1); });
  loop.at(200, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 300u);
}

TEST(EventLoop, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(50, [&] { order.push_back(1); });
  loop.at(50, [&] { order.push_back(2); });
  loop.at(50, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, AfterSchedulesRelative) {
  EventLoop loop;
  SimTime fired_at = 0;
  loop.at(100, [&] {
    loop.after(50, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  SimTime fired_at = 0;
  loop.at(100, [&] {
    loop.at(10, [&] { fired_at = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(fired_at, 100u);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.at(100, [&] { ++fired; });
  loop.at(200, [&] { ++fired; });
  loop.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 150u);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until(250);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, EventsScheduledDuringRunExecute) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) loop.after(10, chain);
  };
  loop.after(10, chain);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), 100u);
}

TEST(EventLoop, StepExecutesOneEvent) {
  EventLoop loop;
  int fired = 0;
  loop.at(1, [&] { ++fired; });
  loop.at(2, [&] { ++fired; });
  EXPECT_TRUE(loop.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.step());
  EXPECT_FALSE(loop.step());
}

TEST(SimTimeHelpers, Conversions) {
  EXPECT_EQ(sim_ms(5), 5000u);
  EXPECT_EQ(sim_sec(2), 2'000'000u);
}

}  // namespace
}  // namespace ads
