#include "net/multicast.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(MulticastGroup, ReplicatesToAllMembers) {
  EventLoop loop;
  MulticastGroup group(loop);
  int a = 0;
  int b = 0;
  int c = 0;
  group.add_member({}).set_receiver([&](Bytes) { ++a; });
  group.add_member({}).set_receiver([&](Bytes) { ++b; });
  group.add_member({}).set_receiver([&](Bytes) { ++c; });

  const Bytes datagram = {1, 2, 3};
  for (int i = 0; i < 10; ++i) group.send(datagram);
  loop.run();
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 10);
  EXPECT_EQ(c, 10);
  EXPECT_EQ(group.datagrams_sent(), 10u);
  EXPECT_EQ(group.member_count(), 3u);
}

TEST(MulticastGroup, MembersExperienceIndependentLoss) {
  EventLoop loop;
  MulticastGroup group(loop);
  int clean = 0;
  int lossy = 0;
  group.add_member({}).set_receiver([&](Bytes) { ++clean; });
  UdpChannelOptions bad;
  bad.loss = 0.5;
  bad.seed = 7;
  group.add_member(bad).set_receiver([&](Bytes) { ++lossy; });

  for (int i = 0; i < 500; ++i) group.send(Bytes{static_cast<std::uint8_t>(i)});
  loop.run();
  EXPECT_EQ(clean, 500);
  EXPECT_NEAR(static_cast<double>(lossy) / 500.0, 0.5, 0.08);
}

TEST(MulticastGroup, MembersHaveIndependentDelays) {
  EventLoop loop;
  MulticastGroup group(loop);
  SimTime fast_at = 0;
  SimTime slow_at = 0;
  UdpChannelOptions fast;
  fast.delay_us = 1000;
  UdpChannelOptions slow;
  slow.delay_us = 90'000;
  group.add_member(fast).set_receiver([&](Bytes) { fast_at = loop.now(); });
  group.add_member(slow).set_receiver([&](Bytes) { slow_at = loop.now(); });
  group.send(Bytes{1});
  loop.run();
  EXPECT_EQ(fast_at, 1000u);
  EXPECT_EQ(slow_at, 90'000u);
}

TEST(MulticastGroup, EmptyGroupSendReturnsFalse) {
  EventLoop loop;
  MulticastGroup group(loop);
  EXPECT_FALSE(group.send(Bytes{1}));
}

}  // namespace
}  // namespace ads
