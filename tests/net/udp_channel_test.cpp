#include "net/udp_channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>

namespace ads {
namespace {

Bytes payload(std::size_t n, std::uint8_t fill = 0xAB) { return Bytes(n, fill); }

TEST(UdpChannel, DeliversAfterPropagationDelay) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.delay_us = 5000;
  UdpChannel ch(loop, opts);
  SimTime arrived = 0;
  ch.set_receiver([&](Bytes) { arrived = loop.now(); });
  loop.at(1000, [&] { ch.send(payload(100)); });
  loop.run();
  EXPECT_EQ(arrived, 6000u);
}

TEST(UdpChannel, LosslessByDefault) {
  EventLoop loop;
  UdpChannelOptions opts;
  UdpChannel ch(loop, opts);
  int received = 0;
  ch.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 100; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(ch.stats().lost, 0u);
}

TEST(UdpChannel, LossRateApproximatelyRespected) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.loss = 0.3;
  opts.seed = 9;
  UdpChannel ch(loop, opts);
  int received = 0;
  ch.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 2000; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_NEAR(static_cast<double>(received) / 2000.0, 0.7, 0.05);
  EXPECT_EQ(ch.stats().lost + ch.stats().delivered, 2000u);
}

TEST(UdpChannel, DuplicationProducesExtraCopies) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.duplicate = 0.5;
  opts.seed = 11;
  UdpChannel ch(loop, opts);
  int received = 0;
  ch.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 1000; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_GT(received, 1300);
  EXPECT_EQ(static_cast<std::uint64_t>(received),
            1000 + ch.stats().duplicated);
}

TEST(UdpChannel, JitterReordersPackets) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.delay_us = 1000;
  opts.jitter_us = 50000;
  opts.seed = 13;
  UdpChannel ch(loop, opts);
  std::vector<std::uint8_t> order;
  ch.set_receiver([&](Bytes d) { order.push_back(d[0]); });
  for (std::uint8_t i = 0; i < 50; ++i) ch.send(Bytes{i});
  loop.run();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(UdpChannel, BandwidthSerialisesBackToBack) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.bandwidth_bps = 8000;  // 1000 bytes/sec
  opts.delay_us = 0;
  UdpChannel ch(loop, opts);
  std::vector<SimTime> arrivals;
  ch.set_receiver([&](Bytes) { arrivals.push_back(loop.now()); });
  ch.send(payload(500));  // 0.5 s serialisation
  ch.send(payload(500));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 500'000u);
  EXPECT_EQ(arrivals[1], 1'000'000u);
}

TEST(UdpChannel, QueueTailDropsWhenFull) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.bandwidth_bps = 8000;  // 1000 B/s
  opts.queue_bytes = 1500;
  UdpChannel ch(loop, opts);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += ch.send(payload(500)) ? 1 : 0;
  EXPECT_LT(accepted, 10);
  EXPECT_GT(ch.stats().queue_dropped, 0u);
  loop.run();
  EXPECT_EQ(ch.stats().delivered, static_cast<std::uint64_t>(accepted));
}

TEST(UdpChannel, StatsCountBytes) {
  EventLoop loop;
  UdpChannel ch(loop, {});
  ch.set_receiver([](Bytes) {});
  ch.send(payload(123));
  loop.run();
  EXPECT_EQ(ch.stats().bytes_delivered, 123u);
}

TEST(UdpChannel, SetLossStartsDeterministicEpisode) {
  // The seeding contract: episode N's draws depend only on (seed, N), not
  // on how much traffic earlier episodes carried. Two channels with the
  // same seed but different episode-0 volumes must agree byte-for-byte
  // once set_loss() starts episode 1.
  auto run = [](int warmup_sends) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.loss = 0.5;
    opts.seed = 21;
    opts.delay_us = 0;
    UdpChannel ch(loop, opts);
    std::vector<std::uint8_t> got;
    ch.set_receiver([&](Bytes d) { got.push_back(d[0]); });
    for (int i = 0; i < warmup_sends; ++i) ch.send(payload(10));
    loop.run();
    got.clear();

    ch.set_loss(0.3);  // episode 1
    for (std::uint8_t i = 0; i < 100; ++i) ch.send(Bytes{i});
    loop.run();
    return got;
  };
  const auto a = run(3);
  const auto b = run(250);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(UdpChannel, SetLossEpisodesDrawDistinctStreams) {
  // Same loss rate, consecutive episodes: the mixed per-episode seeds must
  // not replay the same loss pattern.
  auto episode = [](int calls) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.seed = 33;
    opts.delay_us = 0;
    UdpChannel ch(loop, opts);
    std::vector<std::uint8_t> got;
    ch.set_receiver([&](Bytes d) { got.push_back(d[0]); });
    for (int c = 0; c < calls; ++c) ch.set_loss(0.5);
    for (std::uint8_t i = 0; i < 100; ++i) ch.send(Bytes{i});
    loop.run();
    return got;
  };
  EXPECT_NE(episode(1), episode(2));
  EXPECT_EQ(episode(2), episode(2));
}

TEST(UdpChannel, ResetStatsZeroesWithoutTouchingLink) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.loss = 0.5;
  opts.seed = 9;
  UdpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});
  for (int i = 0; i < 50; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_GT(ch.stats().lost, 0u);

  ch.reset_stats();
  EXPECT_EQ(ch.stats().sent, 0u);
  EXPECT_EQ(ch.stats().delivered, 0u);
  EXPECT_EQ(ch.stats().lost, 0u);
  EXPECT_EQ(ch.stats().bytes_delivered, 0u);

  // The PRNG stream continues where it left off — resetting stats does not
  // replay or skip loss draws.
  ch.send(payload(10));
  loop.run();
  EXPECT_EQ(ch.stats().sent, 1u);
  EXPECT_EQ(ch.stats().delivered + ch.stats().lost, 1u);
}

TEST(UdpChannel, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.loss = 0.5;
    opts.seed = seed;
    UdpChannel ch(loop, opts);
    std::vector<std::uint8_t> got;
    ch.set_receiver([&](Bytes d) { got.push_back(d[0]); });
    for (std::uint8_t i = 0; i < 100; ++i) ch.send(Bytes{i});
    loop.run();
    return got;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

PacketView view_pkt(buf::BufPool& pool, std::uint16_t seq, std::size_t size) {
  buf::BufRef b = pool.acquire(size);
  b.bytes().resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    b.bytes()[i] = static_cast<std::uint8_t>(seq + i);
  }
  return PacketView::build(seq % 2 == 0, 96, seq, 1000u + seq, 0xFEED,
                           std::move(b), 0, size);
}

TEST(UdpChannel, SendPacketMatchesSendOnSerialisedBytes) {
  // Differential: the header-plus-view entry point must be observationally
  // identical to send() on the serialised datagram — same loss draws, same
  // drops, same delivery times and bytes — across loss, duplication,
  // bandwidth limiting and queue drops.
  UdpChannelOptions opts;
  opts.loss = 0.2;
  opts.duplicate = 0.1;
  opts.jitter_us = 3000;
  opts.bandwidth_bps = 400'000;
  opts.queue_bytes = 8 * 1024;
  opts.seed = 77;

  auto run = [&](bool as_views) {
    EventLoop loop;
    UdpChannel ch(loop, opts);
    buf::BufPool pool;
    std::vector<std::pair<SimTime, Bytes>> got;
    ch.set_receiver([&](Bytes d) { got.emplace_back(loop.now(), std::move(d)); });
    for (std::uint16_t s = 0; s < 400; ++s) {
      const PacketView v = view_pkt(pool, s, 100 + s % 700);
      if (as_views) {
        ch.send_packet(v);
      } else {
        const Bytes wire = v.serialize();
        ch.send(wire);
      }
    }
    loop.run();
    return std::make_tuple(std::move(got), ch.stats().sent, ch.stats().lost,
                           ch.stats().queue_dropped, ch.stats().duplicated,
                           ch.stats().delivered);
  };
  const auto views = run(true);
  const auto bytes = run(false);
  EXPECT_TRUE(views == bytes);
  EXPECT_GT(std::get<3>(views), 0u);  // queue drops actually exercised
  EXPECT_GT(std::get<2>(views), 0u);  // loss exercised
}

TEST(UdpChannel, SendBatchMatchesSequentialSendPacket) {
  UdpChannelOptions opts;
  opts.loss = 0.1;
  opts.bandwidth_bps = 300'000;
  opts.queue_bytes = 4 * 1024;
  opts.seed = 31;

  auto run = [&](bool batched) {
    EventLoop loop;
    UdpChannel ch(loop, opts);
    buf::BufPool pool;
    std::vector<Bytes> got;
    ch.set_receiver([&](Bytes d) { got.push_back(std::move(d)); });
    std::size_t accepted = 0;
    std::vector<PacketView> batch;
    for (std::uint16_t s = 0; s < 200; ++s) {
      batch.push_back(view_pkt(pool, s, 200));
    }
    if (batched) {
      accepted = ch.send_batch(batch);
    } else {
      for (const PacketView& v : batch) {
        if (ch.send_packet(v)) ++accepted;
      }
    }
    loop.run();
    return std::make_pair(std::move(got), accepted);
  };
  const auto batched = run(true);
  const auto sequential = run(false);
  EXPECT_TRUE(batched == sequential);
  EXPECT_LT(batched.second, 200u);  // some tail drops: batch kept going
  EXPECT_GT(batched.second, 0u);
}

TEST(UdpChannel, LostViewPacketIsNeverMaterialised) {
  // loss=1: every packet is admitted then lost; the view path must not have
  // touched the payload buffer (refcount proves no hidden copies either).
  EventLoop loop;
  UdpChannelOptions opts;
  opts.loss = 1.0;
  UdpChannel ch(loop, opts);
  buf::BufPool pool;
  int received = 0;
  ch.set_receiver([&](Bytes) { ++received; });
  const PacketView v = view_pkt(pool, 1, 500);
  EXPECT_TRUE(ch.send_packet(v));
  loop.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(ch.stats().lost, 1u);
}

}  // namespace
}  // namespace ads
