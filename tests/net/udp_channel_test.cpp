#include "net/udp_channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ads {
namespace {

Bytes payload(std::size_t n, std::uint8_t fill = 0xAB) { return Bytes(n, fill); }

TEST(UdpChannel, DeliversAfterPropagationDelay) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.delay_us = 5000;
  UdpChannel ch(loop, opts);
  SimTime arrived = 0;
  ch.set_receiver([&](Bytes) { arrived = loop.now(); });
  loop.at(1000, [&] { ch.send(payload(100)); });
  loop.run();
  EXPECT_EQ(arrived, 6000u);
}

TEST(UdpChannel, LosslessByDefault) {
  EventLoop loop;
  UdpChannelOptions opts;
  UdpChannel ch(loop, opts);
  int received = 0;
  ch.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 100; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(ch.stats().lost, 0u);
}

TEST(UdpChannel, LossRateApproximatelyRespected) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.loss = 0.3;
  opts.seed = 9;
  UdpChannel ch(loop, opts);
  int received = 0;
  ch.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 2000; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_NEAR(static_cast<double>(received) / 2000.0, 0.7, 0.05);
  EXPECT_EQ(ch.stats().lost + ch.stats().delivered, 2000u);
}

TEST(UdpChannel, DuplicationProducesExtraCopies) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.duplicate = 0.5;
  opts.seed = 11;
  UdpChannel ch(loop, opts);
  int received = 0;
  ch.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 1000; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_GT(received, 1300);
  EXPECT_EQ(static_cast<std::uint64_t>(received),
            1000 + ch.stats().duplicated);
}

TEST(UdpChannel, JitterReordersPackets) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.delay_us = 1000;
  opts.jitter_us = 50000;
  opts.seed = 13;
  UdpChannel ch(loop, opts);
  std::vector<std::uint8_t> order;
  ch.set_receiver([&](Bytes d) { order.push_back(d[0]); });
  for (std::uint8_t i = 0; i < 50; ++i) ch.send(Bytes{i});
  loop.run();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(UdpChannel, BandwidthSerialisesBackToBack) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.bandwidth_bps = 8000;  // 1000 bytes/sec
  opts.delay_us = 0;
  UdpChannel ch(loop, opts);
  std::vector<SimTime> arrivals;
  ch.set_receiver([&](Bytes) { arrivals.push_back(loop.now()); });
  ch.send(payload(500));  // 0.5 s serialisation
  ch.send(payload(500));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 500'000u);
  EXPECT_EQ(arrivals[1], 1'000'000u);
}

TEST(UdpChannel, QueueTailDropsWhenFull) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.bandwidth_bps = 8000;  // 1000 B/s
  opts.queue_bytes = 1500;
  UdpChannel ch(loop, opts);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += ch.send(payload(500)) ? 1 : 0;
  EXPECT_LT(accepted, 10);
  EXPECT_GT(ch.stats().queue_dropped, 0u);
  loop.run();
  EXPECT_EQ(ch.stats().delivered, static_cast<std::uint64_t>(accepted));
}

TEST(UdpChannel, StatsCountBytes) {
  EventLoop loop;
  UdpChannel ch(loop, {});
  ch.set_receiver([](Bytes) {});
  ch.send(payload(123));
  loop.run();
  EXPECT_EQ(ch.stats().bytes_delivered, 123u);
}

TEST(UdpChannel, SetLossStartsDeterministicEpisode) {
  // The seeding contract: episode N's draws depend only on (seed, N), not
  // on how much traffic earlier episodes carried. Two channels with the
  // same seed but different episode-0 volumes must agree byte-for-byte
  // once set_loss() starts episode 1.
  auto run = [](int warmup_sends) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.loss = 0.5;
    opts.seed = 21;
    opts.delay_us = 0;
    UdpChannel ch(loop, opts);
    std::vector<std::uint8_t> got;
    ch.set_receiver([&](Bytes d) { got.push_back(d[0]); });
    for (int i = 0; i < warmup_sends; ++i) ch.send(payload(10));
    loop.run();
    got.clear();

    ch.set_loss(0.3);  // episode 1
    for (std::uint8_t i = 0; i < 100; ++i) ch.send(Bytes{i});
    loop.run();
    return got;
  };
  const auto a = run(3);
  const auto b = run(250);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(UdpChannel, SetLossEpisodesDrawDistinctStreams) {
  // Same loss rate, consecutive episodes: the mixed per-episode seeds must
  // not replay the same loss pattern.
  auto episode = [](int calls) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.seed = 33;
    opts.delay_us = 0;
    UdpChannel ch(loop, opts);
    std::vector<std::uint8_t> got;
    ch.set_receiver([&](Bytes d) { got.push_back(d[0]); });
    for (int c = 0; c < calls; ++c) ch.set_loss(0.5);
    for (std::uint8_t i = 0; i < 100; ++i) ch.send(Bytes{i});
    loop.run();
    return got;
  };
  EXPECT_NE(episode(1), episode(2));
  EXPECT_EQ(episode(2), episode(2));
}

TEST(UdpChannel, ResetStatsZeroesWithoutTouchingLink) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.loss = 0.5;
  opts.seed = 9;
  UdpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});
  for (int i = 0; i < 50; ++i) ch.send(payload(10));
  loop.run();
  EXPECT_GT(ch.stats().lost, 0u);

  ch.reset_stats();
  EXPECT_EQ(ch.stats().sent, 0u);
  EXPECT_EQ(ch.stats().delivered, 0u);
  EXPECT_EQ(ch.stats().lost, 0u);
  EXPECT_EQ(ch.stats().bytes_delivered, 0u);

  // The PRNG stream continues where it left off — resetting stats does not
  // replay or skip loss draws.
  ch.send(payload(10));
  loop.run();
  EXPECT_EQ(ch.stats().sent, 1u);
  EXPECT_EQ(ch.stats().delivered + ch.stats().lost, 1u);
}

TEST(UdpChannel, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.loss = 0.5;
    opts.seed = seed;
    UdpChannel ch(loop, opts);
    std::vector<std::uint8_t> got;
    ch.set_receiver([&](Bytes d) { got.push_back(d[0]); });
    for (std::uint8_t i = 0; i < 100; ++i) ch.send(Bytes{i});
    loop.run();
    return got;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace ads
