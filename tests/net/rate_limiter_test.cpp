#include "net/rate_limiter.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket(8000, 1000);
  EXPECT_DOUBLE_EQ(bucket.available(0), 1000.0);
}

TEST(TokenBucket, UnlimitedNeverBlocks) {
  TokenBucket bucket(0, 0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.try_consume(1'000'000'000, 0));
}

TEST(TokenBucket, TryConsumeSpendsTokens) {
  TokenBucket bucket(8000, 1000);
  EXPECT_TRUE(bucket.try_consume(600, 0));
  EXPECT_FALSE(bucket.try_consume(600, 0));  // only 400 left
  EXPECT_TRUE(bucket.try_consume(400, 0));
}

TEST(TokenBucket, RefillsAtConfiguredRate) {
  TokenBucket bucket(8000, 1000);  // 1000 bytes/s
  ASSERT_TRUE(bucket.try_consume(1000, 0));
  EXPECT_FALSE(bucket.try_consume(100, 0));
  // After 100 ms: 100 bytes refilled.
  EXPECT_NEAR(bucket.available(100'000), 100.0, 1.0);
  EXPECT_TRUE(bucket.try_consume(100, 100'000));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket bucket(8000, 1000);
  EXPECT_NEAR(bucket.available(3'600'000'000ull), 1000.0, 1e-6);
}

TEST(TokenBucket, ConsumeMayGoNegative) {
  TokenBucket bucket(8000, 1000);
  bucket.consume(1500, 0);
  EXPECT_LT(bucket.available(0), 0.0);
  // Recovery takes the deficit plus the request into account.
  EXPECT_FALSE(bucket.try_consume(1, 0));
  EXPECT_TRUE(bucket.try_consume(1, 600'000));  // -500 + 600 refilled
}

TEST(TokenBucket, LongRunRateBounded) {
  // Greedy sender: consume whenever possible; average rate must not exceed
  // the configured rate by more than the burst.
  TokenBucket bucket(80'000, 2000);  // 10 kB/s
  std::uint64_t sent = 0;
  for (SimTime t = 0; t < 10'000'000; t += 1000) {  // 10 s, 1 ms steps
    if (bucket.try_consume(500, t)) sent += 500;
  }
  EXPECT_LE(sent, 10'000 * 10 + 2000);
  EXPECT_GE(sent, 10'000 * 10 - 2000);
}

}  // namespace
}  // namespace ads
