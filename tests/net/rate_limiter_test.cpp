#include "net/rate_limiter.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket(8000, 1000);
  EXPECT_DOUBLE_EQ(bucket.available(0), 1000.0);
}

TEST(TokenBucket, UnlimitedNeverBlocks) {
  TokenBucket bucket(0, 0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.try_consume(1'000'000'000, 0));
}

TEST(TokenBucket, TryConsumeSpendsTokens) {
  TokenBucket bucket(8000, 1000);
  EXPECT_TRUE(bucket.try_consume(600, 0));
  EXPECT_FALSE(bucket.try_consume(600, 0));  // only 400 left
  EXPECT_TRUE(bucket.try_consume(400, 0));
}

TEST(TokenBucket, RefillsAtConfiguredRate) {
  TokenBucket bucket(8000, 1000);  // 1000 bytes/s
  ASSERT_TRUE(bucket.try_consume(1000, 0));
  EXPECT_FALSE(bucket.try_consume(100, 0));
  // After 100 ms: 100 bytes refilled.
  EXPECT_NEAR(bucket.available(100'000), 100.0, 1.0);
  EXPECT_TRUE(bucket.try_consume(100, 100'000));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket bucket(8000, 1000);
  EXPECT_NEAR(bucket.available(3'600'000'000ull), 1000.0, 1e-6);
}

TEST(TokenBucket, ConsumeMayGoNegative) {
  TokenBucket bucket(8000, 1000);
  bucket.consume(1500, 0);
  EXPECT_LT(bucket.available(0), 0.0);
  // Recovery takes the deficit plus the request into account.
  EXPECT_FALSE(bucket.try_consume(1, 0));
  EXPECT_TRUE(bucket.try_consume(1, 600'000));  // -500 + 600 refilled
}

TEST(TokenBucket, ZeroRateIsUnlimitedRegardlessOfBurst) {
  TokenBucket bucket(0, 1000);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_EQ(bucket.rate_bps(), 0u);
  // consume() is a no-op and try_consume always succeeds, even far beyond
  // the nominal burst.
  bucket.consume(1'000'000, 0);
  EXPECT_TRUE(bucket.try_consume(1'000'000'000, 0));
  EXPECT_DOUBLE_EQ(bucket.available(0), 1000.0);
}

TEST(TokenBucket, BurstExhaustionRefillBoundary) {
  TokenBucket bucket(8000, 1000);  // 1000 bytes/s
  ASSERT_TRUE(bucket.try_consume(1000, 0));
  EXPECT_DOUBLE_EQ(bucket.available(0), 0.0);
  // One microsecond refills 0.001 bytes: not yet enough for a 1-byte send.
  EXPECT_FALSE(bucket.try_consume(1, 1));
  // Exactly 1 ms refills exactly 1 byte.
  EXPECT_TRUE(bucket.try_consume(1, 1000));
  EXPECT_FALSE(bucket.try_consume(1, 1000));
}

TEST(TokenBucket, ClockJumpBackwardsDoesNotMintTokens) {
  TokenBucket bucket(8000, 1000);
  ASSERT_TRUE(bucket.try_consume(1000, 1'000'000));
  // A clock observed earlier than the last refill must not change the
  // balance (refill only acts on forward progress).
  EXPECT_DOUBLE_EQ(bucket.available(500'000), 0.0);
  EXPECT_FALSE(bucket.try_consume(1, 0));
  // Forward progress past the high-water mark refills normally.
  EXPECT_NEAR(bucket.available(1'100'000), 100.0, 1.0);
}

TEST(TokenBucket, SetRateSettlesElapsedTimeAtOldRate) {
  TokenBucket bucket(8000, 1000);  // 1000 bytes/s
  ASSERT_TRUE(bucket.try_consume(1000, 0));
  // 100 ms at the old rate accrues 100 bytes, then the rate doubles; the
  // next 100 ms accrues 200 bytes. A retroactive re-price would give 400.
  bucket.set_rate(16'000, 100'000);
  EXPECT_EQ(bucket.rate_bps(), 16'000u);
  EXPECT_NEAR(bucket.available(200'000), 300.0, 1.0);
}

TEST(TokenBucket, SetRateFromUnlimitedStartsFull) {
  TokenBucket bucket(0, 1000);
  bucket.consume(500, 0);  // no-op while unlimited
  bucket.set_rate(8000, 1'000'000);
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_DOUBLE_EQ(bucket.available(1'000'000), 1000.0);
}

TEST(TokenBucket, SetRateToSameValueIsIdempotent) {
  TokenBucket bucket(8000, 1000);
  ASSERT_TRUE(bucket.try_consume(600, 0));
  const double before = bucket.available(0);
  bucket.set_rate(8000, 0);
  EXPECT_DOUBLE_EQ(bucket.available(0), before);
}

TEST(TokenBucket, LongRunRateBounded) {
  // Greedy sender: consume whenever possible; average rate must not exceed
  // the configured rate by more than the burst.
  TokenBucket bucket(80'000, 2000);  // 10 kB/s
  std::uint64_t sent = 0;
  for (SimTime t = 0; t < 10'000'000; t += 1000) {  // 10 s, 1 ms steps
    if (bucket.try_consume(500, t)) sent += 500;
  }
  EXPECT_LE(sent, 10'000 * 10 + 2000);
  EXPECT_GE(sent, 10'000 * 10 - 2000);
}

}  // namespace
}  // namespace ads
