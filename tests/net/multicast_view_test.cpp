// Differential test for the MulticastGroup view fan-out: replicating one
// PacketView to the whole group (send_packet / send_batch) must deliver the
// exact bytes, to the exact members, at the exact times that per-member
// send() of the serialised datagram would — loss, delay and queue draws are
// per member channel and must not be disturbed by which entry point the AH
// used.
#include <gtest/gtest.h>

#include <vector>

#include "buf/buf.hpp"
#include "net/multicast.hpp"
#include "rtp/packet_view.hpp"

namespace ads {
namespace {

constexpr std::size_t kMembers = 4;
constexpr int kPackets = 200;

PacketView make_view(buf::BufPool& pool, std::uint16_t seq,
                     std::size_t payload_len) {
  buf::BufRef buf = pool.acquire(payload_len);
  buf.bytes().assign(payload_len, static_cast<std::uint8_t>(seq & 0xFF));
  return PacketView::build((seq % 7) == 0, 99, seq, 90u * seq, 0xFACE,
                           std::move(buf), 0, payload_len);
}

UdpChannelOptions member_opts(std::size_t i) {
  UdpChannelOptions opts;
  opts.seed = 0x5EED + i;
  opts.loss = 0.15;          // per-member loss draws
  opts.delay_us = 5'000 * (i + 1);
  opts.jitter_us = 2'000;    // reordering
  opts.duplicate = 0.05;
  opts.bandwidth_bps = 2'000'000;  // serialisation delay matters
  return opts;
}

struct Deliveries {
  std::vector<std::vector<Bytes>> per_member =
      std::vector<std::vector<Bytes>>(kMembers);
  std::vector<std::vector<SimTime>> times =
      std::vector<std::vector<SimTime>>(kMembers);
};

/// Run one arm: identical channels, identical traffic, different entry
/// point (views vs pre-serialised datagrams).
Deliveries run_arm(bool via_views) {
  EventLoop loop;
  MulticastGroup group(loop);
  Deliveries out;
  for (std::size_t i = 0; i < kMembers; ++i) {
    UdpChannel& ch = group.add_member(member_opts(i));
    ch.set_receiver([&out, &loop, i](Bytes data) {
      out.per_member[i].push_back(std::move(data));
      out.times[i].push_back(loop.now());
    });
  }

  buf::BufPool pool;
  for (int p = 0; p < kPackets; ++p) {
    const PacketView v =
        make_view(pool, static_cast<std::uint16_t>(p), 100 + (p % 400));
    if (via_views) {
      if ((p % 3) == 0) {
        // Exercise the batch path too: one-element batches are the
        // degenerate case that must behave exactly like send_packet.
        group.send_batch(std::span<const PacketView>(&v, 1));
      } else {
        group.send_packet(v);
      }
    } else {
      group.send(v.serialize());
    }
    loop.run_until(loop.now() + 1'000);  // 1 ms spacing
  }
  loop.run_until(loop.now() + sim_ms(200));  // drain in-flight deliveries
  return out;
}

TEST(MulticastViewFanout, ViewPathMatchesDatagramPathPerMember) {
  const Deliveries views = run_arm(true);
  const Deliveries datagrams = run_arm(false);

  for (std::size_t i = 0; i < kMembers; ++i) {
    // Loss must have bitten (differentially interesting traffic)…
    EXPECT_LT(views.per_member[i].size(), static_cast<std::size_t>(kPackets));
    // …but both arms saw identical per-member delivery sequences.
    ASSERT_EQ(views.per_member[i].size(), datagrams.per_member[i].size())
        << "member " << i << " delivery count diverged";
    EXPECT_TRUE(views.per_member[i] == datagrams.per_member[i])
        << "member " << i << " delivered bytes diverged";
    EXPECT_TRUE(views.times[i] == datagrams.times[i])
        << "member " << i << " delivery times diverged";
    ASSERT_FALSE(views.per_member[i].empty());
  }

  // Members draw independently: at least two members must disagree about
  // which packets survived (otherwise the per-member channels collapsed
  // into one shared draw and the test proves nothing).
  bool any_difference = false;
  for (std::size_t i = 1; i < kMembers && !any_difference; ++i) {
    any_difference = views.per_member[i] != views.per_member[0];
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ads
