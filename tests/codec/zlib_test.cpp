#include "codec/zlib.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ads {
namespace {

Bytes ascii(const char* s) {
  Bytes out;
  while (*s) out.push_back(static_cast<std::uint8_t>(*s++));
  return out;
}

TEST(Zlib, RoundTrip) {
  const Bytes input = ascii("zlib wraps a deflate stream with an adler checksum");
  auto out = zlib_decompress(zlib_compress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Zlib, EmptyRoundTrip) {
  auto out = zlib_decompress(zlib_compress({}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(Zlib, HeaderIsRfc1950Conformant) {
  const Bytes stream = zlib_compress(ascii("x"));
  ASSERT_GE(stream.size(), 6u);
  EXPECT_EQ(stream[0] & 0x0F, 8);  // CM = deflate
  EXPECT_EQ((static_cast<unsigned>(stream[0]) * 256 + stream[1]) % 31, 0u);
  EXPECT_EQ(stream[1] & 0x20, 0);  // no FDICT
}

TEST(Zlib, DecodesReferenceStream) {
  // zlib-compressed "hello" as produced by standard zlib.
  const Bytes stream = {0x78, 0x9C, 0xCB, 0x48, 0xCD, 0xC9, 0xC9, 0x07,
                        0x00, 0x06, 0x2C, 0x02, 0x15};
  auto out = zlib_decompress(stream);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, ascii("hello"));
}

TEST(Zlib, CorruptedChecksumDetected) {
  Bytes stream = zlib_compress(ascii("payload payload payload"));
  stream.back() ^= 0xFF;
  auto out = zlib_decompress(stream);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kBadChecksum);
}

TEST(Zlib, CorruptedHeaderDetected) {
  Bytes stream = zlib_compress(ascii("payload"));
  stream[0] = 0x79;  // CM=9 unsupported
  EXPECT_FALSE(zlib_decompress(stream).ok());
  stream[0] = 0x78;
  stream[1] ^= 0x01;  // break the %31 check
  EXPECT_FALSE(zlib_decompress(stream).ok());
}

TEST(Zlib, TruncatedStreamDetected) {
  Bytes stream = zlib_compress(ascii("some reasonably long payload here"));
  stream.resize(4);
  EXPECT_FALSE(zlib_decompress(stream).ok());
  EXPECT_FALSE(zlib_decompress(BytesView(stream).subspan(0, 1)).ok());
}

TEST(Zlib, FdictRejected) {
  Bytes stream = zlib_compress(ascii("abc"));
  stream[1] |= 0x20;
  // Fix the header checksum so only FDICT triggers the failure.
  const unsigned cmf = stream[0];
  unsigned flg = stream[1] & ~0x1Fu;
  flg |= (31 - (cmf * 256 + flg) % 31) % 31;
  stream[1] = static_cast<std::uint8_t>(flg);
  auto out = zlib_decompress(stream);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kUnsupported);
}

TEST(Zlib, LargeRandomisedRoundTrips) {
  Prng rng(23);
  for (int iter = 0; iter < 5; ++iter) {
    Bytes input(static_cast<std::size_t>(rng.range(0, 200000)));
    for (auto& b : input) {
      // Mix of compressible (zero) and random bytes.
      b = rng.chance(0.7) ? 0 : static_cast<std::uint8_t>(rng.next_u32());
    }
    auto out = zlib_decompress(zlib_compress(input));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, input);
  }
}

}  // namespace
}  // namespace ads
