// The *_into scratch overloads must be byte-identical to their allocating
// counterparts — that equivalence is what lets the parallel encoder and the
// encoded-region cache reuse arenas without changing the wire format.
#include <gtest/gtest.h>

#include "capture/apps.hpp"
#include "codec/deflate.hpp"
#include "codec/registry.hpp"
#include "codec/zlib.hpp"

namespace ads {
namespace {

Image workload_frame(std::string_view name, std::int64_t w, std::int64_t h) {
  auto app = make_app(name, w, h, 7);
  for (int t = 0; t < 10; ++t) app->tick(static_cast<std::uint64_t>(t));
  return app->content();
}

TEST(EncodeScratch, EncodeIntoMatchesEncodeAcrossCodecsAndWorkloads) {
  const CodecRegistry registry = CodecRegistry::with_defaults();
  EncodeScratch scratch;
  Bytes out;
  for (const char* workload : {"terminal", "slideshow", "video"}) {
    const Image frame = workload_frame(workload, 160, 120);
    for (const ContentPt pt :
         {ContentPt::kRaw, ContentPt::kRle, ContentPt::kPng, ContentPt::kDct}) {
      const ImageCodec* codec = registry.find(pt);
      ASSERT_NE(codec, nullptr);
      const Bytes expected = codec->encode(frame);
      ASSERT_TRUE(registry.encode_into(pt, frame, out, scratch));
      EXPECT_EQ(out, expected) << codec->name() << " on " << workload;
    }
  }
}

TEST(EncodeScratch, ScratchReuseAcrossManyImagesStaysIdentical) {
  // The steady-state pattern: one arena, many differently-sized bands. The
  // arena must never leak state from one encode into the next.
  const CodecRegistry registry = CodecRegistry::with_defaults();
  EncodeScratch scratch;
  Bytes out;
  for (int i = 0; i < 8; ++i) {
    const Image frame = workload_frame("paint", 64 + 16 * i, 48 + 8 * i);
    for (const ContentPt pt : {ContentPt::kPng, ContentPt::kRle, ContentPt::kDct}) {
      ASSERT_TRUE(registry.encode_into(pt, frame, out, scratch));
      EXPECT_EQ(out, registry.find(pt)->encode(frame)) << "iteration " << i;
    }
  }
}

TEST(EncodeScratch, EncodeIntoUnknownPayloadTypeFails) {
  const CodecRegistry registry = CodecRegistry::with_defaults();
  EncodeScratch scratch;
  Bytes out = {1, 2, 3};
  EXPECT_FALSE(registry.encode_into(static_cast<ContentPt>(111),
                                    workload_frame("terminal", 32, 32), out, scratch));
}

TEST(EncodeScratch, DeflateCompressIntoMatchesDeflateCompress) {
  Bytes input;
  for (int i = 0; i < 40000; ++i) {
    input.push_back(static_cast<std::uint8_t>((i * 31) % 251));
  }
  DeflateScratch scratch;
  Bytes out;
  for (const int level : {0, 1, 6, 9}) {
    const DeflateOptions opts{.level = level};
    deflate_compress_into(input, opts, out, scratch);
    EXPECT_EQ(out, deflate_compress(input, opts)) << "level " << level;
  }
}

TEST(EncodeScratch, ZlibCompressIntoMatchesZlibCompress) {
  Bytes input;
  for (int i = 0; i < 20000; ++i) {
    input.push_back(static_cast<std::uint8_t>(i % 17));
  }
  DeflateScratch scratch;
  Bytes out;
  zlib_compress_into(input, {.level = 6}, out, scratch);
  EXPECT_EQ(out, zlib_compress(input, {.level = 6}));
}

TEST(EncodeScratch, RepeatedDeflateIntoReusesCapacity) {
  Bytes input(60000, 0xAB);
  DeflateScratch scratch;
  Bytes out;
  deflate_compress_into(input, {}, out, scratch);
  const Bytes first = out;
  const std::size_t cap = out.capacity();
  for (int i = 0; i < 4; ++i) {
    deflate_compress_into(input, {}, out, scratch);
    EXPECT_EQ(out, first);
    // Identical input: the recycled buffer must not need to regrow.
    EXPECT_EQ(out.capacity(), cap);
  }
}

}  // namespace
}  // namespace ads
