#include "codec/png.hpp"

#include <gtest/gtest.h>

#include "image/metrics.hpp"
#include "util/prng.hpp"

namespace ads {
namespace {

Image gradient(std::int64_t w, std::int64_t h) {
  Image img(w, h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      img.set(x, y,
              Pixel{static_cast<std::uint8_t>(x * 255 / std::max<std::int64_t>(1, w - 1)),
                    static_cast<std::uint8_t>(y * 255 / std::max<std::int64_t>(1, h - 1)),
                    static_cast<std::uint8_t>((x + y) & 0xFF), 255});
    }
  }
  return img;
}

Image noisy(std::int64_t w, std::int64_t h, std::uint64_t seed) {
  Image img(w, h);
  Prng rng(seed);
  for (auto& p : img.pixels()) {
    p = Pixel{static_cast<std::uint8_t>(rng.next_u32()),
              static_cast<std::uint8_t>(rng.next_u32()),
              static_cast<std::uint8_t>(rng.next_u32()),
              static_cast<std::uint8_t>(rng.next_u32())};
  }
  return img;
}

TEST(Png, SignatureAndStructure) {
  const Bytes data = png_encode(Image(4, 4, kWhite));
  ASSERT_GE(data.size(), 8u);
  const Bytes sig = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'};
  EXPECT_TRUE(std::equal(sig.begin(), sig.end(), data.begin()));
  // First chunk must be IHDR with length 13.
  EXPECT_EQ(data[8], 0);
  EXPECT_EQ(data[11], 13);
  EXPECT_EQ(data[12], 'I');
  EXPECT_EQ(data[13], 'H');
}

TEST(Png, LosslessRoundTripFlatColour) {
  const Image img(33, 17, Pixel{10, 200, 30, 255});
  auto out = png_decode(png_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(Png, LosslessRoundTripGradient) {
  const Image img = gradient(64, 48);
  auto out = png_decode(png_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(Png, LosslessRoundTripNoise) {
  const Image img = noisy(50, 50, 3);
  auto out = png_decode(png_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(Png, RgbModeDropsAlphaOnly) {
  Image img = gradient(20, 20);
  for (auto& p : img.pixels()) p.a = 77;
  auto out = png_decode(png_encode(img, PngOptions{.deflate = {}, .rgba = false, .adaptive_filters = true}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(diff_pixel_count(*out, img), 0);  // RGB identical
  EXPECT_EQ(out->at(0, 0).a, 255);            // alpha reset
}

TEST(Png, NonAdaptiveFiltersStillLossless) {
  const Image img = gradient(31, 29);
  auto out = png_decode(png_encode(img, PngOptions{.deflate = {}, .rgba = true, .adaptive_filters = false}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(Png, AdaptiveFiltersHelpOnGradients) {
  const Image img = gradient(256, 256);
  const std::size_t adaptive = png_encode(img).size();
  const std::size_t plain = png_encode(img, PngOptions{.deflate = {}, .rgba = true, .adaptive_filters = false}).size();
  EXPECT_LT(adaptive, plain);
}

TEST(Png, FlatColourCompressesHard) {
  const Image img(640, 480, Pixel{0, 90, 200, 255});
  const Bytes data = png_encode(img);
  EXPECT_LT(data.size(), 5000u);  // 1.2 MB raw
}

TEST(Png, CorruptedCrcRejected) {
  Bytes data = png_encode(gradient(16, 16));
  data[data.size() - 5] ^= 0xFF;  // inside IEND CRC
  auto out = png_decode(data);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kBadChecksum);
}

TEST(Png, BadSignatureRejected) {
  Bytes data = png_encode(gradient(8, 8));
  data[0] = 0x00;
  auto out = png_decode(data);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kBadMagic);
}

TEST(Png, TruncationRejectedEverywhere) {
  const Bytes data = png_encode(gradient(24, 24));
  // Any prefix must fail cleanly, never crash.
  for (std::size_t len : {0ul, 4ul, 8ul, 20ul, 33ul, data.size() - 1}) {
    EXPECT_FALSE(png_decode(BytesView(data).subspan(0, len)).ok()) << len;
  }
}

TEST(Png, HostileDimensionsRejected) {
  // Craft an IHDR declaring a multi-terabyte raster.
  Bytes data = png_encode(Image(1, 1, kWhite));
  // IHDR payload starts at offset 16 (8 sig + 4 len + 4 type).
  for (int i = 0; i < 4; ++i) data[16 + static_cast<std::size_t>(i)] = 0xFF;
  auto out = png_decode(data);
  ASSERT_FALSE(out.ok());
  // Either the CRC (we modified the chunk) — recompute to hit the guard.
  EXPECT_TRUE(out.error() == ParseError::kBadChecksum ||
              out.error() == ParseError::kOverflow);
}

TEST(Png, OnePixelImage) {
  Image img(1, 1, Pixel{1, 2, 3, 4});
  auto out = png_decode(png_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

class PngSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PngSizes, RoundTripAtOddDimensions) {
  const auto [w, h] = GetParam();
  const Image img = noisy(w, h, static_cast<std::uint64_t>(w * 1000 + h));
  auto out = png_decode(png_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, PngSizes,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 100},
                                           std::pair{100, 1}, std::pair{3, 7},
                                           std::pair{255, 3}, std::pair{64, 64},
                                           std::pair{127, 255}));

}  // namespace
}  // namespace ads
