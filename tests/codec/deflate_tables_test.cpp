// Exhaustive verification of the DEFLATE length/distance code tables
// against the RFC 1951 §3.2.5 definitions, for every legal value.
#include <gtest/gtest.h>

#include "codec/deflate.hpp"

namespace ads {
namespace {

using namespace deflate_tables;

TEST(DeflateTables, EveryLengthMapsToItsCodeRange) {
  for (int length = 3; length <= 258; ++length) {
    const int code = length_code(length);
    ASSERT_GE(code, 0);
    ASSERT_LT(code, kNumLengthCodes);
    const int base = kLengthBase[static_cast<std::size_t>(code)];
    const int extra = kLengthExtra[static_cast<std::size_t>(code)];
    // The value must be representable as base + extra bits.
    EXPECT_GE(length, base) << length;
    EXPECT_LT(length - base, 1 << extra) << length;
    // And must not belong to the next code's range (exclusive upper bound),
    // except that 258 is its own dedicated code 28.
    if (code + 1 < kNumLengthCodes) {
      EXPECT_LT(length, kLengthBase[static_cast<std::size_t>(code) + 1]) << length;
    }
  }
}

TEST(DeflateTables, Length258IsCode28) {
  EXPECT_EQ(length_code(258), 28);
  EXPECT_EQ(kLengthExtra[28], 0);
}

TEST(DeflateTables, EveryDistanceMapsToItsCodeRange) {
  for (int dist = 1; dist <= 32768; ++dist) {
    const int code = dist_code(dist);
    ASSERT_GE(code, 0);
    ASSERT_LT(code, kNumDistCodes);
    const int base = kDistBase[static_cast<std::size_t>(code)];
    const int extra = kDistExtra[static_cast<std::size_t>(code)];
    ASSERT_GE(dist, base) << dist;
    ASSERT_LT(dist - base, 1 << extra) << dist;
    if (code + 1 < kNumDistCodes) {
      ASSERT_LT(dist, kDistBase[static_cast<std::size_t>(code) + 1]) << dist;
    }
  }
}

TEST(DeflateTables, TablesCoverContiguousRanges) {
  // Each length code's range starts where the previous ends.
  for (int code = 0; code + 1 < kNumLengthCodes - 1; ++code) {
    const int end = kLengthBase[static_cast<std::size_t>(code)] +
                    (1 << kLengthExtra[static_cast<std::size_t>(code)]);
    EXPECT_EQ(end, kLengthBase[static_cast<std::size_t>(code) + 1]) << code;
  }
  for (int code = 0; code + 1 < kNumDistCodes; ++code) {
    const int end = kDistBase[static_cast<std::size_t>(code)] +
                    (1 << kDistExtra[static_cast<std::size_t>(code)]);
    EXPECT_EQ(end, kDistBase[static_cast<std::size_t>(code) + 1]) << code;
  }
}

TEST(DeflateTables, ClcOrderIsRfc1951Permutation) {
  // §3.2.7: 16,17,18,0,8,7,9,6,10,5,11,4,12,3,13,2,14,1,15.
  const std::uint8_t expected[] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                   11, 4,  12, 3, 13, 2, 14, 1, 15};
  ASSERT_EQ(kClcOrder.size(), 19u);
  for (std::size_t i = 0; i < 19; ++i) EXPECT_EQ(kClcOrder[i], expected[i]) << i;
}

}  // namespace
}  // namespace ads
