#include "codec/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/prng.hpp"

namespace ads {
namespace {

TEST(BuildCodeLengths, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freqs(10, 0);
  freqs[4] = 100;
  auto lengths = build_code_lengths(freqs, 15);
  EXPECT_EQ(lengths[4], 1);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (i != 4) {
      EXPECT_EQ(lengths[i], 0);
    }
  }
}

TEST(BuildCodeLengths, KraftInequalityHolds) {
  Prng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::uint64_t> freqs(286);
    for (auto& f : freqs) f = rng.below(1000);
    auto lengths = build_code_lengths(freqs, 15);
    double kraft = 0;
    for (std::uint8_t l : lengths) {
      if (l) kraft += std::pow(2.0, -static_cast<double>(l));
    }
    EXPECT_LE(kraft, 1.0 + 1e-12);
  }
}

TEST(BuildCodeLengths, RespectsMaxBits) {
  // Exponential frequencies force a degenerate tree deeper than 7 without
  // the limiting fallback.
  std::vector<std::uint64_t> freqs;
  std::uint64_t f = 1;
  for (int i = 0; i < 20; ++i) {
    freqs.push_back(f);
    f *= 3;
  }
  auto lengths = build_code_lengths(freqs, 7);
  for (std::uint8_t l : lengths) EXPECT_LE(l, 7);
  // All symbols still get codes.
  for (std::uint8_t l : lengths) EXPECT_GT(l, 0);
}

TEST(BuildCodeLengths, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs = {1000, 1, 1, 1};
  auto lengths = build_code_lengths(freqs, 15);
  EXPECT_LT(lengths[0], lengths[3]);
}

TEST(CanonicalCodes, MatchRfc1951Example) {
  // RFC 1951 §3.2.2 example: alphabet ABCDEFGH with lengths (3,3,3,3,3,2,4,4)
  // yields codes 010,011,100,101,110,00,1110,1111 (before bit reversal).
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  auto codes = canonical_codes(lengths);
  const std::vector<std::uint32_t> expected_msb = {0b010, 0b011, 0b100, 0b101,
                                                   0b110, 0b00,  0b1110, 0b1111};
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_EQ(codes[i], reverse_bits(expected_msb[i], lengths[i])) << "symbol " << i;
  }
}

TEST(HuffmanDecoder, RejectsOversubscribedCode) {
  // Three codes of length 1 cannot exist.
  HuffmanDecoder d;
  EXPECT_FALSE(d.init({1, 1, 1}).ok());
}

TEST(HuffmanDecoder, AcceptsIncompleteCode) {
  // A single length-1 code (DEFLATE's degenerate distance table).
  HuffmanDecoder d;
  EXPECT_TRUE(d.init({1}).ok());
}

TEST(HuffmanRoundTrip, EncodeDecodeRandomSymbols) {
  Prng rng(17);
  for (int iter = 0; iter < 10; ++iter) {
    const int alphabet = static_cast<int>(rng.range(2, 286));
    std::vector<std::uint64_t> freqs(static_cast<std::size_t>(alphabet));
    for (auto& f : freqs) f = rng.below(500) + (rng.chance(0.3) ? 0 : 1);
    if (std::accumulate(freqs.begin(), freqs.end(), 0ull) == 0) freqs[0] = 1;

    auto lengths = build_code_lengths(freqs, 15);
    auto codes = canonical_codes(lengths);
    HuffmanDecoder dec;
    ASSERT_TRUE(dec.init(lengths).ok());

    // Emit a random sequence of symbols that have codes.
    std::vector<int> symbols;
    for (int s = 0; s < alphabet; ++s) {
      if (lengths[static_cast<std::size_t>(s)]) symbols.push_back(s);
    }
    ASSERT_FALSE(symbols.empty());
    BitWriter w;
    std::vector<int> emitted;
    for (int k = 0; k < 500; ++k) {
      const int sym = symbols[rng.below(symbols.size())];
      emitted.push_back(sym);
      w.write(codes[static_cast<std::size_t>(sym)],
              lengths[static_cast<std::size_t>(sym)]);
    }
    const Bytes data = w.take();
    BitReader r(data);
    for (int expected : emitted) {
      auto got = dec.decode(r);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, expected);
    }
  }
}

TEST(HuffmanDecoder, GarbageInputFailsCleanly) {
  HuffmanDecoder d;
  ASSERT_TRUE(d.init({2, 2, 2, 3, 3}).ok());
  const Bytes empty;
  BitReader r(empty);
  EXPECT_FALSE(d.decode(r).ok());
}

}  // namespace
}  // namespace ads
