#include <gtest/gtest.h>

#include "codec/raw_codec.hpp"
#include "codec/rle_codec.hpp"
#include "util/prng.hpp"

namespace ads {
namespace {

Image noisy(std::int64_t w, std::int64_t h, std::uint64_t seed) {
  Image img(w, h);
  Prng rng(seed);
  for (auto& p : img.pixels()) {
    p = Pixel{static_cast<std::uint8_t>(rng.next_u32()),
              static_cast<std::uint8_t>(rng.next_u32()),
              static_cast<std::uint8_t>(rng.next_u32()), 255};
  }
  return img;
}

TEST(RawCodec, RoundTrip) {
  const Image img = noisy(17, 23, 1);
  auto out = raw_decode(raw_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(RawCodec, SizeIsExactlyHeaderPlusPixels) {
  const Image img(10, 20, kWhite);
  EXPECT_EQ(raw_encode(img).size(), 8u + 10 * 20 * 4);
}

TEST(RawCodec, TruncatedPayloadRejected) {
  Bytes data = raw_encode(noisy(8, 8, 2));
  data.pop_back();
  EXPECT_FALSE(raw_decode(data).ok());
}

TEST(RawCodec, TrailingGarbageRejected) {
  Bytes data = raw_encode(noisy(8, 8, 2));
  data.push_back(0);
  EXPECT_FALSE(raw_decode(data).ok());
}

TEST(RawCodec, HostileDimensionsRejected) {
  ByteWriter w;
  w.u32(0xFFFFFFFF);
  w.u32(0xFFFFFFFF);
  auto out = raw_decode(w.view());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kOverflow);
}

TEST(RleCodec, RoundTripFlat) {
  const Image img(100, 100, Pixel{5, 6, 7, 255});
  auto out = rle_decode(rle_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(RleCodec, RoundTripNoise) {
  const Image img = noisy(33, 41, 3);
  auto out = rle_decode(rle_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(RleCodec, FlatImageCompressesToFewRuns) {
  const Image img(256, 256, kWhite);  // 65536 pixels = one 65535 run + one 1 run
  EXPECT_EQ(rle_encode(img).size(), 8u + 2 * 6);
}

TEST(RleCodec, RunNeverCrossesMaxU16) {
  // 70000 identical pixels require a run split at 65535.
  const Image img(700, 100, kBlack);
  auto out = rle_decode(rle_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, img);
}

TEST(RleCodec, OverflowingRunRejected) {
  // Declare more pixels than the image holds.
  ByteWriter w;
  w.u32(2);
  w.u32(2);
  w.u16(5);  // 5 > 4 pixels
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u8(255);
  EXPECT_FALSE(rle_decode(w.view()).ok());
}

TEST(RleCodec, ShortPayloadRejected) {
  ByteWriter w;
  w.u32(2);
  w.u32(2);
  w.u16(4);
  w.u8(0);  // truncated pixel
  EXPECT_FALSE(rle_decode(w.view()).ok());
}

TEST(RleCodec, EmptyImage) {
  const Image img;
  auto out = rle_decode(rle_encode(img));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->width(), 0);
}

}  // namespace
}  // namespace ads
