#include "codec/registry.hpp"

#include <gtest/gtest.h>

#include "codec/png.hpp"
#include "image/metrics.hpp"

namespace ads {
namespace {

TEST(CodecRegistry, DefaultsContainAllBuiltins) {
  const auto registry = CodecRegistry::with_defaults();
  EXPECT_NE(registry.find(ContentPt::kRaw), nullptr);
  EXPECT_NE(registry.find(ContentPt::kRle), nullptr);
  EXPECT_NE(registry.find(ContentPt::kPng), nullptr);
  EXPECT_NE(registry.find(ContentPt::kDct), nullptr);
}

TEST(CodecRegistry, PngIsMandatoryAndLossless) {
  // Draft §5.2.2: "All AH and participant software implementations MUST
  // support PNG images."
  const auto registry = CodecRegistry::with_defaults();
  const ImageCodec* png = registry.find(ContentPt::kPng);
  ASSERT_NE(png, nullptr);
  EXPECT_TRUE(png->lossless());
  EXPECT_EQ(png->name(), "png");
}

TEST(CodecRegistry, UnknownPayloadTypeReturnsNull) {
  const auto registry = CodecRegistry::with_defaults();
  EXPECT_EQ(registry.find(std::uint8_t{0}), nullptr);
  EXPECT_EQ(registry.find(std::uint8_t{127}), nullptr);
}

TEST(CodecRegistry, PayloadTypesEnumerated) {
  const auto registry = CodecRegistry::with_defaults();
  const auto pts = registry.payload_types();
  EXPECT_EQ(pts.size(), 4u);
}

TEST(CodecRegistry, EveryDefaultCodecRoundTripsThroughItsInterface) {
  const auto registry = CodecRegistry::with_defaults();
  Image img(24, 16);
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 24; ++x) {
      img.set(x, y,
              Pixel{static_cast<std::uint8_t>(x * 10), static_cast<std::uint8_t>(y * 10),
                    128, 255});
    }
  }
  for (const ContentPt pt : registry.payload_types()) {
    const ImageCodec* codec = registry.find(pt);
    ASSERT_NE(codec, nullptr);
    auto out = codec->decode(codec->encode(img));
    ASSERT_TRUE(out.ok()) << codec->name();
    EXPECT_EQ(out->width(), img.width()) << codec->name();
    EXPECT_EQ(out->height(), img.height()) << codec->name();
    if (codec->lossless()) {
      EXPECT_EQ(diff_pixel_count(*out, img), 0) << codec->name();
    } else {
      EXPECT_GT(psnr(img, *out), 25.0) << codec->name();
    }
  }
}

TEST(CodecRegistry, AddOverridesExisting) {
  CodecRegistry registry = CodecRegistry::with_defaults();
  registry.add(std::make_unique<PngCodec>(PngOptions{.deflate = {.level = 1}}));
  EXPECT_NE(registry.find(ContentPt::kPng), nullptr);
  EXPECT_EQ(registry.payload_types().size(), 4u);
}

}  // namespace
}  // namespace ads
