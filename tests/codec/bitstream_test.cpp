#include "codec/bitstream.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ads {
namespace {

TEST(BitWriter, LsbFirstPacking) {
  BitWriter w;
  w.write(0b1, 1);
  w.write(0b01, 2);  // bits 1,2 = 1,0
  w.write(0b10110, 5);
  const Bytes out = w.take();
  ASSERT_EQ(out.size(), 1u);
  // bit0=1, bit1=1, bit2=0, bits3..7 = 0,1,1,0,1
  EXPECT_EQ(out[0], 0b10110011);
}

TEST(BitWriter, AlignAndByte) {
  BitWriter w;
  w.write(0b101, 3);
  w.align_to_byte();
  w.byte(0xAB);
  const Bytes out = w.take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0b00000101);
  EXPECT_EQ(out[1], 0xAB);
}

TEST(BitReader, ReadsBackWhatWriterWrote) {
  BitWriter w;
  w.write(0x3, 2);
  w.write(0x1F, 5);
  w.write(0x155, 9);
  w.write(0xFFFFF, 20);
  const Bytes data = w.take();

  BitReader r(data);
  EXPECT_EQ(r.read(2).value(), 0x3u);
  EXPECT_EQ(r.read(5).value(), 0x1Fu);
  EXPECT_EQ(r.read(9).value(), 0x155u);
  EXPECT_EQ(r.read(20).value(), 0xFFFFFu);
}

TEST(BitReader, TruncationDetected) {
  const Bytes data = {0xFF};
  BitReader r(data);
  EXPECT_TRUE(r.read(8).ok());
  auto v = r.read(1);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error(), ParseError::kTruncated);
}

TEST(BitReader, AlignToByteSkipsPartial) {
  const Bytes data = {0b00000001, 0xCD};
  BitReader r(data);
  EXPECT_EQ(r.bit().value(), 1u);
  r.align_to_byte();
  EXPECT_EQ(r.read(8).value(), 0xCDu);
}

TEST(BitRoundTrip, RandomisedPropertySweep) {
  Prng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<std::uint32_t, int>> items;
    BitWriter w;
    for (int i = 0; i < 200; ++i) {
      const int bits = static_cast<int>(rng.range(1, 24));
      const std::uint32_t value =
          rng.next_u32() & ((bits == 32 ? 0 : (1u << bits)) - 1u);
      items.emplace_back(value, bits);
      w.write(value, bits);
    }
    const Bytes data = w.take();
    BitReader r(data);
    for (auto [value, bits] : items) {
      auto v = r.read(bits);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, value);
    }
  }
}

TEST(ReverseBits, KnownValues) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  EXPECT_EQ(reverse_bits(0x1, 1), 0x1u);
  EXPECT_EQ(reverse_bits(0, 8), 0u);
}

}  // namespace
}  // namespace ads
