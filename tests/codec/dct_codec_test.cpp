#include "codec/dct_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "codec/png.hpp"
#include "image/metrics.hpp"
#include "util/prng.hpp"

namespace ads {
namespace {

/// Smooth photographic-style content: low-frequency blobs plus mild noise.
Image photographic(std::int64_t w, std::int64_t h, std::uint64_t seed) {
  Image img(w, h);
  Prng rng(seed);
  const double fx = 2.0 * M_PI / static_cast<double>(w);
  const double fy = 2.0 * M_PI / static_cast<double>(h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const double base = 128 + 90 * std::sin(fx * static_cast<double>(x) * 2) *
                                    std::cos(fy * static_cast<double>(y) * 3);
      const int noise = static_cast<int>(rng.range(-6, 6));
      const auto v = static_cast<std::uint8_t>(std::clamp(base + noise, 0.0, 255.0));
      img.set(x, y, Pixel{v, static_cast<std::uint8_t>(255 - v),
                          static_cast<std::uint8_t>((v * 3) & 0xFF), 255});
    }
  }
  return img;
}

TEST(DctCodec, RoundTripShapePreserved) {
  const Image img = photographic(64, 64, 1);
  auto out = dct_decode(dct_encode(img, {.quality = 90}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->width(), 64);
  EXPECT_EQ(out->height(), 64);
  EXPECT_GT(psnr(img, *out), 30.0);
}

TEST(DctCodec, NonMultipleOf8Dimensions) {
  const Image img = photographic(61, 45, 2);
  auto out = dct_decode(dct_encode(img, {.quality = 85}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->width(), 61);
  EXPECT_EQ(out->height(), 45);
  EXPECT_GT(psnr(img, *out), 25.0);
}

TEST(DctCodec, QualityKnobTradesSizeForFidelity) {
  const Image img = photographic(128, 128, 3);
  const Bytes lo = dct_encode(img, {.quality = 10});
  const Bytes hi = dct_encode(img, {.quality = 95});
  EXPECT_LT(lo.size(), hi.size());
  auto lo_img = dct_decode(lo);
  auto hi_img = dct_decode(hi);
  ASSERT_TRUE(lo_img.ok());
  ASSERT_TRUE(hi_img.ok());
  EXPECT_GT(psnr(img, *hi_img), psnr(img, *lo_img));
}

TEST(DctCodec, BeatsPngOnPhotographicContent) {
  // The draft's §4.2 claim, in miniature: lossy DCT at moderate quality
  // produces fewer bytes than lossless PNG on photographic input.
  const Image img = photographic(128, 128, 4);
  const std::size_t dct_size = dct_encode(img, {.quality = 60}).size();
  const std::size_t png_size = png_encode(img).size();
  EXPECT_LT(dct_size, png_size);
}

TEST(DctCodec, FlatColourNearExact) {
  const Image img(64, 64, Pixel{120, 60, 200, 255});
  auto out = dct_decode(dct_encode(img, {.quality = 90}));
  ASSERT_TRUE(out.ok());
  EXPECT_GT(psnr(img, *out), 40.0);
}

TEST(DctCodec, TruncatedRejected) {
  Bytes data = dct_encode(photographic(32, 32, 5));
  data.resize(data.size() / 2);
  EXPECT_FALSE(dct_decode(data).ok());
  EXPECT_FALSE(dct_decode(BytesView(data).subspan(0, 4)).ok());
}

TEST(DctCodec, HostileDimensionsRejected) {
  ByteWriter w;
  w.u32(0x7FFFFFFF);
  w.u32(0x7FFFFFFF);
  w.u8(50);
  auto out = dct_decode(w.view());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kOverflow);
}

TEST(DctCodec, CoefficientCountMismatchRejected) {
  // Valid header but a coefficient stream for the wrong block count.
  const Image img = photographic(16, 16, 6);
  Bytes small = dct_encode(img);
  ByteWriter w;
  w.u32(64);  // claims 8x8 blocks => more coeffs than present
  w.u32(64);
  ByteReader r(small);
  (void)r.skip(9);
  w.u8(75);
  w.bytes(r.rest());
  EXPECT_FALSE(dct_decode(w.view()).ok());
}

class DctQualities : public ::testing::TestWithParam<int> {};

TEST_P(DctQualities, PsnrScalesWithQuality) {
  const Image img = photographic(64, 64, 7);
  auto out = dct_decode(dct_encode(img, {.quality = GetParam()}));
  ASSERT_TRUE(out.ok());
  // Even the worst quality should keep gross structure.
  EXPECT_GT(psnr(img, *out), GetParam() >= 50 ? 18.0 : 11.0);
}

INSTANTIATE_TEST_SUITE_P(Qualities, DctQualities, ::testing::Values(1, 10, 25, 50, 75, 95, 100));

}  // namespace
}  // namespace ads
