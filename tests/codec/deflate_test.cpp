#include "codec/deflate.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "codec/bitstream.hpp"
#include "codec/inflate.hpp"
#include "util/prng.hpp"

namespace ads {
namespace {

Bytes ascii(const char* s) {
  Bytes out;
  while (*s) out.push_back(static_cast<std::uint8_t>(*s++));
  return out;
}

Bytes repetitive(std::size_t n) {
  Bytes out;
  out.reserve(n);
  const char* pattern = "the quick brown fox jumps over the lazy dog. ";
  for (std::size_t i = 0; out.size() < n; ++i) out.push_back(static_cast<std::uint8_t>(pattern[i % 46]));
  return out;
}

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u32());
  return out;
}

TEST(DeflateTables, LengthCodeBoundaries) {
  using namespace deflate_tables;
  EXPECT_EQ(length_code(3), 0);
  EXPECT_EQ(length_code(10), 7);
  EXPECT_EQ(length_code(11), 8);
  EXPECT_EQ(length_code(12), 8);
  EXPECT_EQ(length_code(257), 27);
  EXPECT_EQ(length_code(258), 28);
}

TEST(DeflateTables, DistCodeBoundaries) {
  using namespace deflate_tables;
  EXPECT_EQ(dist_code(1), 0);
  EXPECT_EQ(dist_code(4), 3);
  EXPECT_EQ(dist_code(5), 4);
  EXPECT_EQ(dist_code(24576), 28);
  EXPECT_EQ(dist_code(24577), 29);
  EXPECT_EQ(dist_code(32768), 29);
}

TEST(Deflate, EmptyInput) {
  const Bytes compressed = deflate_compress({});
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(Deflate, SingleByte) {
  const Bytes input = {0x42};
  auto out = inflate(deflate_compress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Deflate, TextRoundTrip) {
  const Bytes input = ascii("hello hello hello hello world world world");
  auto out = inflate(deflate_compress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Deflate, CompressesRepetitiveData) {
  const Bytes input = repetitive(100000);
  const Bytes compressed = deflate_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 20);
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Deflate, RandomDataFallsBackGracefully) {
  // Incompressible data must not blow up beyond stored-block overhead.
  const Bytes input = random_bytes(70000, 1);
  const Bytes compressed = deflate_compress(input);
  EXPECT_LT(compressed.size(), input.size() + 64);
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Deflate, StoredBlockRoundTrip) {
  const Bytes input = repetitive(150000);  // > 2 stored blocks
  const Bytes compressed = deflate_compress(input, {.level = 0});
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Deflate, ForcedFixedBlock) {
  const Bytes input = repetitive(5000);
  const Bytes compressed =
      deflate_compress(input, {.level = 6, .block = DeflateOptions::Block::kFixed});
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Deflate, ForcedDynamicBlock) {
  const Bytes input = repetitive(5000);
  const Bytes compressed =
      deflate_compress(input, {.level = 6, .block = DeflateOptions::Block::kDynamic});
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Deflate, DynamicBeatsFixedOnSkewedData) {
  // Long runs of a single byte: dynamic Huffman should win clearly.
  Bytes input(50000, 'a');
  const Bytes fixed =
      deflate_compress(input, {.level = 6, .block = DeflateOptions::Block::kFixed});
  const Bytes dynamic =
      deflate_compress(input, {.level = 6, .block = DeflateOptions::Block::kDynamic});
  EXPECT_LT(dynamic.size(), fixed.size());
}

TEST(Deflate, LongRunUsesOverlappingMatches) {
  // 100k identical bytes compress to a few hundred bytes only if the
  // encoder emits distance-1 matches that overlap their own output.
  Bytes input(100000, 'x');
  const Bytes compressed = deflate_compress(input);
  EXPECT_LT(compressed.size(), 600u);
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Inflate, RejectsTruncatedStream) {
  const Bytes input = repetitive(10000);
  Bytes compressed = deflate_compress(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(inflate(compressed).ok());
}

TEST(Inflate, RejectsBadBlockType) {
  // BTYPE=11 is reserved.
  const Bytes bad = {0x07};  // BFINAL=1, BTYPE=11
  auto out = inflate(bad);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kBadValue);
}

TEST(Inflate, RejectsStoredLengthMismatch) {
  // Stored block whose NLEN is not ~LEN.
  const Bytes bad = {0x01, 0x05, 0x00, 0x00, 0x00};
  auto out = inflate(bad);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kBadValue);
}

TEST(Inflate, RejectsDistanceBeforeStart) {
  // Hand-craft: fixed block, literal 'A', then a match with distance 4
  // (only 1 byte of history). Encoder: lit 'A' = 0x41 -> code 8 bits;
  // simpler to synthesise via our own encoder then corrupt — instead use
  // stored+fixed trick: rely on decoder check with a crafted stream.
  // 'A' fixed code: 0x41+0x30=0x71 -> 8 bits. length 3 = code 257 (7 bits,
  // value 0000001). dist code 3 (5 bits) = distance 4.
  BitWriter w;
  w.write(1, 1);  // BFINAL
  w.write(1, 2);  // fixed
  w.write(reverse_bits(0x71, 8), 8);
  w.write(reverse_bits(0x01, 7), 7);   // length code 257 -> length 3
  w.write(reverse_bits(0x03, 5), 5);   // dist code 3 -> distance 4 > history
  w.write(0, 7);                       // end of block (code 256 = 0000000)
  auto out = inflate(w.take());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kBadValue);
}

TEST(Inflate, ZipBombGuard) {
  Bytes input(1 << 20, 0);
  const Bytes compressed = deflate_compress(input);
  auto out = inflate(compressed, {.max_output = 1024});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), ParseError::kOverflow);
}

TEST(Inflate, InteropFixedHuffmanReferenceStream) {
  // "hello" compressed by zlib (level 6) — raw deflate body of the widely
  // documented stream 78 9c cb 48 cd c9 c9 07 00.
  const Bytes body = {0xCB, 0x48, 0xCD, 0xC9, 0xC9, 0x07, 0x00};
  auto out = inflate(body);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, ascii("hello"));
}

class DeflateLevels : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(DeflateLevels, RoundTripAcrossLevelsAndSizes) {
  const auto [level, size] = GetParam();
  // Mixed content: half repetitive, half random.
  Bytes input = repetitive(size / 2);
  const Bytes rnd = random_bytes(size - input.size(), 7);
  input.insert(input.end(), rnd.begin(), rnd.end());

  const Bytes compressed = deflate_compress(input, {.level = level});
  auto out = inflate(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeflateLevels,
    ::testing::Combine(::testing::Values(0, 1, 2, 4, 6, 9),
                       ::testing::Values(std::size_t{1}, std::size_t{100},
                                         std::size_t{4096}, std::size_t{65535},
                                         std::size_t{65536}, std::size_t{300000})));

TEST(Deflate, HigherLevelNeverMuchWorse) {
  const Bytes input = repetitive(200000);
  const std::size_t l1 = deflate_compress(input, {.level = 1}).size();
  const std::size_t l9 = deflate_compress(input, {.level = 9}).size();
  EXPECT_LE(l9, l1 + 64);
}

TEST(Deflate, BoundaryLevelsRoundTrip) {
  const Bytes input = repetitive(50000);
  for (const int level : {0, 1, 9}) {
    auto out = inflate(deflate_compress(input, {.level = level}));
    ASSERT_TRUE(out.ok()) << "level " << level;
    EXPECT_EQ(*out, input) << "level " << level;
  }
}

TEST(Deflate, OutOfRangeLevelsClampToValidRange) {
  EXPECT_EQ(deflate_clamp_level(-1), 0);
  EXPECT_EQ(deflate_clamp_level(12), 9);
  EXPECT_EQ(deflate_clamp_level(0), 0);
  EXPECT_EQ(deflate_clamp_level(9), 9);
  EXPECT_EQ(deflate_clamp_level(5), 5);

  // Out-of-range levels behave exactly like the nearest valid level instead
  // of feeding bogus values into the match-search parameter tables.
  const Bytes input = repetitive(30000);
  EXPECT_EQ(deflate_compress(input, {.level = -1}),
            deflate_compress(input, {.level = 0}));
  EXPECT_EQ(deflate_compress(input, {.level = 12}),
            deflate_compress(input, {.level = 9}));

  auto low = inflate(deflate_compress(input, {.level = -1}));
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(*low, input);
  auto high = inflate(deflate_compress(input, {.level = 12}));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(*high, input);
}

}  // namespace
}  // namespace ads
