#include "bfcp/bfcp_message.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(BfcpMessage, CommonHeaderLayout) {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequest;
  msg.conference_id = 0xAABBCCDD;
  msg.transaction_id = 0x1122;
  msg.user_id = 0x3344;
  const Bytes wire = msg.serialize();
  ASSERT_GE(wire.size(), 12u);
  EXPECT_EQ(wire[0], 0x20);  // Ver=1
  EXPECT_EQ(wire[1], 1);     // FloorRequest
  EXPECT_EQ(wire[2], 0);     // payload length (no attributes)
  EXPECT_EQ(wire[3], 0);
  EXPECT_EQ(wire[4], 0xAA);
  EXPECT_EQ(wire[8], 0x11);
  EXPECT_EQ(wire[10], 0x33);
}

TEST(BfcpMessage, RoundTripBareRequest) {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRelease;
  msg.conference_id = 1;
  msg.transaction_id = 2;
  msg.user_id = 3;
  auto parsed = BfcpMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, msg);
}

TEST(BfcpMessage, RoundTripFullStatus) {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequestStatus;
  msg.conference_id = 7;
  msg.transaction_id = 8;
  msg.user_id = 9;
  msg.floor_id = 0;
  msg.floor_request_id = 42;
  msg.request_status = RequestStatus::kGranted;
  msg.queue_position = 0;
  msg.hid_status = HidStatus::kAllAllowed;
  auto parsed = BfcpMessage::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, msg);
}

TEST(BfcpMessage, AttributesArePaddedTo32Bits) {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequest;
  msg.floor_id = 5;  // 2-byte payload -> 4-byte attribute after padding
  const Bytes wire = msg.serialize();
  EXPECT_EQ((wire.size() - 12) % 4, 0u);
}

TEST(BfcpMessage, HidStatusValuesOfFigure20) {
  for (auto status : {HidStatus::kNotAllowed, HidStatus::kKeyboardAllowed,
                      HidStatus::kMouseAllowed, HidStatus::kAllAllowed}) {
    BfcpMessage msg;
    msg.primitive = BfcpPrimitive::kFloorRequestStatus;
    msg.request_status = RequestStatus::kGranted;
    msg.hid_status = status;
    auto parsed = BfcpMessage::parse(msg.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->hid_status, status);
  }
  EXPECT_EQ(static_cast<int>(HidStatus::kNotAllowed), 0);
  EXPECT_EQ(static_cast<int>(HidStatus::kKeyboardAllowed), 1);
  EXPECT_EQ(static_cast<int>(HidStatus::kMouseAllowed), 2);
  EXPECT_EQ(static_cast<int>(HidStatus::kAllAllowed), 3);
}

TEST(BfcpMessage, OutOfRangeHidStatusRejected) {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequestStatus;
  msg.hid_status = HidStatus::kAllAllowed;
  Bytes wire = msg.serialize();
  // STATUS-INFO payload is the last attribute: flip its value to 7.
  wire[wire.size() - 1] = 7;
  EXPECT_FALSE(BfcpMessage::parse(wire).ok());
}

TEST(BfcpMessage, RequestStatusNames) {
  EXPECT_STREQ(to_string(RequestStatus::kGranted), "Granted");
  EXPECT_STREQ(to_string(RequestStatus::kPending), "Pending");
  EXPECT_STREQ(to_string(RequestStatus::kReleased), "Released");
  EXPECT_STREQ(to_string(RequestStatus::kRevoked), "Revoked");
}

TEST(BfcpMessage, WrongVersionRejected) {
  Bytes wire = BfcpMessage{}.serialize();
  wire[0] = 0x40;  // version 2
  EXPECT_FALSE(BfcpMessage::parse(wire).ok());
}

TEST(BfcpMessage, UnknownPrimitiveRejected) {
  Bytes wire = BfcpMessage{}.serialize();
  wire[1] = 9;
  auto parsed = BfcpMessage::parse(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kUnsupported);
}

TEST(BfcpMessage, TruncatedRejected) {
  BfcpMessage msg;
  msg.floor_id = 1;
  msg.request_status = RequestStatus::kGranted;
  const Bytes wire = msg.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(BfcpMessage::parse(BytesView(wire).subspan(0, len)).ok()) << len;
  }
}

TEST(BfcpMessage, UnknownAttributesSkipped) {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequest;
  msg.floor_id = 3;
  Bytes wire = msg.serialize();
  // Append an unknown attribute type 13 (USER-URI), 2-byte payload + pad.
  wire.push_back(13 << 1);
  wire.push_back(4);
  wire.push_back('x');
  wire.push_back('y');
  // Fix payload length: +1 word.
  wire[3] = static_cast<std::uint8_t>(wire[3] + 1);
  auto parsed = BfcpMessage::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->floor_id, 3);
}

}  // namespace
}  // namespace ads
