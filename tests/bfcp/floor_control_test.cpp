#include "bfcp/floor_control.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

BfcpMessage request(std::uint16_t user, std::uint16_t txn = 1) {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequest;
  msg.conference_id = 1;
  msg.transaction_id = txn;
  msg.user_id = user;
  msg.floor_id = 0;
  return msg;
}

BfcpMessage release(std::uint16_t user, std::uint16_t txn = 2) {
  BfcpMessage msg = request(user, txn);
  msg.primitive = BfcpPrimitive::kFloorRelease;
  return msg;
}

TEST(FloorControl, FirstRequestGrantedImmediately) {
  FloorControlServer server;
  auto out = server.on_message(request(10), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user_id, 10);
  EXPECT_EQ(out[0].request_status, RequestStatus::kGranted);
  EXPECT_EQ(server.holder(), 10);
}

TEST(FloorControl, GrantedCarriesHidStatus) {
  // Appendix A: the floor grant tells the holder the current HID state.
  FloorControlServer server;
  auto out = server.on_message(request(10), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].hid_status, HidStatus::kAllAllowed);
}

TEST(FloorControl, SecondRequestQueuedFifo) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  auto out = server.on_message(request(20), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request_status, RequestStatus::kPending);  // "Queued"
  EXPECT_EQ(out[0].queue_position, 1);
  EXPECT_EQ(server.queue_length(), 1u);
}

TEST(FloorControl, ReleasePassesFloorToNextInQueue) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  server.on_message(request(20), 0);
  server.on_message(request(30), 0);
  auto out = server.on_message(release(10), 5);
  // Released to 10, Granted to 20.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].user_id, 10);
  EXPECT_EQ(out[0].request_status, RequestStatus::kReleased);
  EXPECT_EQ(out[1].user_id, 20);
  EXPECT_EQ(out[1].request_status, RequestStatus::kGranted);
  EXPECT_EQ(server.holder(), 20);
  EXPECT_EQ(server.queue_length(), 1u);
}

TEST(FloorControl, FifoOrderPreserved) {
  FloorControlServer server;
  server.on_message(request(1), 0);
  server.on_message(request(2), 0);
  server.on_message(request(3), 0);
  server.on_message(release(1), 0);
  EXPECT_EQ(server.holder(), 2);
  server.on_message(release(2), 0);
  EXPECT_EQ(server.holder(), 3);
  server.on_message(release(3), 0);
  EXPECT_FALSE(server.holder().has_value());
}

TEST(FloorControl, DuplicateRequestFromHolderRestatesGrant) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  auto out = server.on_message(request(10, 9), 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request_status, RequestStatus::kGranted);
  EXPECT_EQ(server.queue_length(), 0u);
}

TEST(FloorControl, DuplicateQueuedRequestRestatesPosition) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  server.on_message(request(20), 0);
  auto out = server.on_message(request(20, 5), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request_status, RequestStatus::kPending);
  EXPECT_EQ(server.queue_length(), 1u);
}

TEST(FloorControl, ReleaseFromQueueCancels) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  server.on_message(request(20), 0);
  auto out = server.on_message(release(20), 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].request_status, RequestStatus::kCancelled);
  EXPECT_EQ(server.queue_length(), 0u);
  EXPECT_EQ(server.holder(), 10);  // unchanged
}

TEST(FloorControl, ReleaseFromStrangerIgnored) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  auto out = server.on_message(release(99), 0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(server.holder(), 10);
}

TEST(FloorControl, GrantExpiresAfterDuration) {
  FloorControlServer server(
      FloorControlOptions{.conference_id = 1, .floor_id = 0, .grant_duration_us = 1000});
  server.on_message(request(10), 0);
  server.on_message(request(20), 0);
  EXPECT_TRUE(server.tick(500).empty());  // not yet
  auto out = server.tick(1500);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].user_id, 10);
  EXPECT_EQ(out[0].request_status, RequestStatus::kRevoked);
  EXPECT_EQ(out[1].user_id, 20);
  EXPECT_EQ(out[1].request_status, RequestStatus::kGranted);
}

TEST(FloorControl, UnlimitedGrantNeverExpires) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  EXPECT_TRUE(server.tick(1'000'000'000).empty());
  EXPECT_EQ(server.holder(), 10);
}

TEST(FloorControl, HidStatusChangeNotifiesHolder) {
  // "The AH MAY temporarily block HID events without revoking the floor."
  FloorControlServer server;
  server.on_message(request(10), 0);
  auto out = server.set_hid_status(HidStatus::kMouseAllowed);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user_id, 10);
  EXPECT_EQ(out[0].request_status, RequestStatus::kGranted);
  EXPECT_EQ(out[0].hid_status, HidStatus::kMouseAllowed);
}

TEST(FloorControl, HidStatusChangeWithoutHolderSilent) {
  FloorControlServer server;
  EXPECT_TRUE(server.set_hid_status(HidStatus::kNotAllowed).empty());
}

TEST(FloorControl, InputGatesFollowHidStatus) {
  FloorControlServer server;
  server.on_message(request(10), 0);
  EXPECT_TRUE(server.may_send_mouse(10));
  EXPECT_TRUE(server.may_send_keyboard(10));
  EXPECT_FALSE(server.may_send_mouse(20));

  server.set_hid_status(HidStatus::kKeyboardAllowed);
  EXPECT_FALSE(server.may_send_mouse(10));
  EXPECT_TRUE(server.may_send_keyboard(10));

  server.set_hid_status(HidStatus::kMouseAllowed);
  EXPECT_TRUE(server.may_send_mouse(10));
  EXPECT_FALSE(server.may_send_keyboard(10));

  server.set_hid_status(HidStatus::kNotAllowed);
  EXPECT_FALSE(server.may_send_mouse(10));
  EXPECT_FALSE(server.may_send_keyboard(10));
}

TEST(FloorControl, WrongConferenceIgnored) {
  FloorControlServer server;
  BfcpMessage msg = request(10);
  msg.conference_id = 99;
  EXPECT_TRUE(server.on_message(msg, 0).empty());
  EXPECT_FALSE(server.holder().has_value());
}

}  // namespace
}  // namespace ads
