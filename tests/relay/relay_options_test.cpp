// RelayOptions validation (same contract as AppHostOptions::validated):
// impossible settings throw std::invalid_argument, merely nonsensical ones
// are clamped into a working configuration — a misconfigured relay must
// never silently wedge a whole subtree.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/session.hpp"
#include "relay/relay.hpp"

namespace ads::relay {
namespace {

TEST(RelayOptions, ZeroMaxLegsThrows) {
  RelayOptions opts;
  opts.max_legs = 0;
  EXPECT_THROW(RelayNode::validated(opts), std::invalid_argument);
  EventLoop loop;
  EXPECT_THROW(RelayNode(loop, opts), std::invalid_argument);
}

TEST(RelayOptions, ZeroReportIntervalThrows) {
  RelayOptions opts;
  opts.report_interval_us = 0;
  EXPECT_THROW(RelayNode::validated(opts), std::invalid_argument);
}

TEST(RelayOptions, ZeroNackFlushClampedToNextTurn) {
  RelayOptions opts;
  opts.nack_flush_us = 0;
  EXPECT_EQ(RelayNode::validated(opts).nack_flush_us, 1u);
}

TEST(RelayOptions, HoldoffClampedUpToFlushInterval) {
  RelayOptions opts;
  opts.nack_flush_us = 50'000;
  opts.nack_holdoff_us = 10'000;  // re-request before the flush even fires
  EXPECT_EQ(RelayNode::validated(opts).nack_holdoff_us, 50'000u);
}

TEST(RelayOptions, TinyRetransmissionCacheClamped) {
  RelayOptions opts;
  opts.retransmission_cache = 0;
  EXPECT_EQ(RelayNode::validated(opts).retransmission_cache, 16u);
}

TEST(RelayOptions, RateLimitedBurstClampedToOnePacket) {
  RelayOptions opts;
  opts.leg_rate_bps = 1'000'000;
  opts.leg_burst_bytes = 100;  // below one MTU: nothing could ever send
  EXPECT_EQ(RelayNode::validated(opts).leg_burst_bytes, 1500u);
  // Unlimited legs keep whatever burst was configured.
  opts.leg_rate_bps = 0;
  opts.leg_burst_bytes = 100;
  EXPECT_EQ(RelayNode::validated(opts).leg_burst_bytes, 100u);
}

TEST(RelayOptions, SwappedAdaptationClampIsReordered) {
  RelayOptions opts;
  opts.adaptation.min_rate_bps = 5'000'000;
  opts.adaptation.max_rate_bps = 1'000'000;
  const RelayOptions v = RelayNode::validated(opts);
  EXPECT_LE(v.adaptation.min_rate_bps, v.adaptation.max_rate_bps);
}

TEST(RelayOptions, DefaultsAreAlreadyValid) {
  const RelayOptions defaults;
  const RelayOptions v = RelayNode::validated(defaults);
  EXPECT_EQ(v.max_legs, defaults.max_legs);
  EXPECT_EQ(v.report_interval_us, defaults.report_interval_us);
  EXPECT_EQ(v.nack_flush_us, defaults.nack_flush_us);
  EXPECT_EQ(v.nack_holdoff_us, defaults.nack_holdoff_us);
  EXPECT_EQ(v.retransmission_cache, defaults.retransmission_cache);
}

TEST(RelayOptions, AddLegBeyondMaxLegsThrows) {
  EventLoop loop;
  RelayOptions opts;
  opts.max_legs = 2;
  RelayNode node(loop, opts);
  LegEndpoint a, b, c;
  node.add_leg(std::move(a));
  node.add_leg(std::move(b));
  EXPECT_THROW(node.add_leg(std::move(c)), std::invalid_argument);
  EXPECT_EQ(node.leg_count(), 2u);
}

TEST(RelayOptions, RemoveLegFreesASlot) {
  EventLoop loop;
  RelayOptions opts;
  opts.max_legs = 1;
  RelayNode node(loop, opts);
  const LegId id = node.add_leg(LegEndpoint{});
  node.remove_leg(id);
  EXPECT_EQ(node.leg_count(), 0u);
  EXPECT_NO_THROW(node.add_leg(LegEndpoint{}));
}

TEST(RelaySession, CascadeDepthIsBounded) {
  SharingSession session;
  SharingSession::RelayHandle* relay = &session.add_relay();
  for (int depth = 2; depth <= SharingSession::kMaxRelayDepth; ++depth) {
    relay = &session.add_relay_child(*relay);
    EXPECT_EQ(relay->depth, depth);
  }
  EXPECT_THROW(session.add_relay_child(*relay), std::invalid_argument);
}

}  // namespace
}  // namespace ads::relay
