// RelayNode behaviour: zero-copy media fan-out, local NACK service with
// upstream deduplication, PLI coalescing, worst-case RR aggregation, and
// the per-leg §7 backlog / §4.3 token-bucket gates.
#include <gtest/gtest.h>

#include <vector>

#include "relay/relay.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_packet.hpp"

namespace ads::relay {
namespace {

constexpr std::uint32_t kMediaSsrc = 0xCAFE0001;

Bytes media_datagram(std::uint16_t seq, std::size_t payload_len = 64,
                     std::uint8_t fill = 0xAB) {
  RtpPacket pkt;
  pkt.marker = true;
  pkt.payload_type = kRemotingPayloadType;
  pkt.sequence = seq;
  pkt.timestamp = 9000u * seq;
  pkt.ssrc = kMediaSsrc;
  pkt.payload.assign(payload_len, fill);
  return pkt.serialize();
}

/// One capturing UDP leg: records every media packet (serialised) and every
/// control datagram the relay hands it.
struct UdpLegProbe {
  std::vector<Bytes> media;
  std::vector<Bytes> control;

  LegEndpoint endpoint() {
    LegEndpoint ep;
    ep.kind = LegEndpoint::Kind::kUdp;
    ep.send_packet = [this](const PacketView& v) {
      media.push_back(v.serialize());
      return true;
    };
    ep.send_packet_batch = [this](std::span<const PacketView> pkts) {
      for (const PacketView& v : pkts) media.push_back(v.serialize());
      return pkts.size();
    };
    ep.send_datagram = [this](BytesView d) {
      control.emplace_back(d.begin(), d.end());
      return true;
    };
    return ep;
  }
};

struct Fixture {
  EventLoop loop;
  RelayNode node;
  std::vector<Bytes> upstream;  ///< packets the relay sent upward

  explicit Fixture(RelayOptions opts = {}) : node(loop, opts) {
    node.set_upstream([this](BytesView p) {
      upstream.emplace_back(p.begin(), p.end());
      return true;
    });
  }

  void feed_media(std::uint16_t seq) {
    node.on_upstream_datagram(media_datagram(seq));
  }

  /// All upstream GenericNack sequences seen so far (across compounds).
  std::vector<std::uint16_t> upstream_nack_seqs() const {
    std::vector<std::uint16_t> out;
    for (const Bytes& dgram : upstream) {
      auto msgs = parse_rtcp_compound(dgram);
      if (!msgs.ok()) continue;
      for (const RtcpMessage& m : *msgs) {
        if (const auto* nack = std::get_if<GenericNack>(&m)) {
          for (std::uint16_t s : nack->requested_sequences()) out.push_back(s);
        }
      }
    }
    return out;
  }

  std::size_t upstream_pli_count() const {
    std::size_t n = 0;
    for (const Bytes& dgram : upstream) {
      auto msgs = parse_rtcp_compound(dgram);
      if (!msgs.ok()) continue;
      for (const RtcpMessage& m : *msgs) {
        if (std::holds_alternative<PictureLossIndication>(m)) ++n;
      }
    }
    return n;
  }
};

TEST(RelayNode, FansMediaToEveryLegByteIdentically) {
  Fixture f;
  UdpLegProbe a, b;
  f.node.add_leg(a.endpoint());
  f.node.add_leg(b.endpoint());

  const Bytes wire0 = media_datagram(100);
  const Bytes wire1 = media_datagram(101);
  f.feed_media(100);
  f.feed_media(101);

  ASSERT_EQ(a.media.size(), 2u);
  ASSERT_EQ(b.media.size(), 2u);
  EXPECT_EQ(a.media[0], wire0);
  EXPECT_EQ(a.media[1], wire1);
  EXPECT_EQ(b.media[0], wire0);
  EXPECT_EQ(b.media[1], wire1);
  EXPECT_EQ(f.node.stats().upstream_packets, 2u);
  EXPECT_EQ(f.node.stats().forwarded_packets, 4u);
  // The send_packet leg path never stages payload bytes.
  EXPECT_EQ(f.node.stats().payload_bytes_copied, 0u);
  EXPECT_EQ(f.node.upstream_ssrc(), kMediaSsrc);
}

TEST(RelayNode, DropsNetworkDuplicates) {
  Fixture f;
  UdpLegProbe a;
  f.node.add_leg(a.endpoint());
  f.feed_media(7);
  f.feed_media(7);
  EXPECT_EQ(a.media.size(), 1u);
  EXPECT_EQ(f.node.stats().upstream_duplicates, 1u);
}

TEST(RelayNode, ServesNackFromLocalCacheWithoutUpstreamRequest) {
  Fixture f;
  UdpLegProbe a, b;
  const LegId leg_a = f.node.add_leg(a.endpoint());
  f.node.add_leg(b.endpoint());
  for (std::uint16_t s = 0; s < 5; ++s) f.feed_media(s);
  a.media.clear();

  // Leg A lost 2 and 3 on its last hop and NACKs; the relay's cache covers
  // both, so nothing goes upstream and leg B sees no retransmission.
  const GenericNack nack =
      GenericNack::for_sequences(0x77, kMediaSsrc, {2, 3});
  f.node.on_leg_packet(leg_a, nack.serialize());

  ASSERT_EQ(a.media.size(), 2u);
  EXPECT_EQ(a.media[0], media_datagram(2));
  EXPECT_EQ(a.media[1], media_datagram(3));
  EXPECT_EQ(b.media.size(), 5u);  // no duplicate fan-out
  EXPECT_EQ(f.node.stats().rtx_served, 2u);
  EXPECT_EQ(f.node.stats().nacks_upstream, 0u);
  f.loop.run_until(f.loop.now() + sim_ms(100));
  EXPECT_TRUE(f.upstream_nack_seqs().empty());
}

TEST(RelayNode, CacheMissGoesUpstreamOnceAndRepairReachesOnlyWaiters) {
  Fixture f;
  UdpLegProbe a, b;
  const LegId leg_a = f.node.add_leg(a.endpoint());
  const LegId leg_b = f.node.add_leg(b.endpoint());
  f.feed_media(0);  // learn the SSRC, seed the receiver

  // Sequence 9 never reached the relay: both legs ask for it; one upstream
  // request must result, with the second leg absorbed as a waiter.
  f.node.on_leg_packet(
      leg_a, GenericNack::for_sequences(0x77, kMediaSsrc, {9}).serialize());
  f.node.on_leg_packet(
      leg_b, GenericNack::for_sequences(0x78, kMediaSsrc, {9}).serialize());
  f.loop.run_until(f.loop.now() + sim_ms(50));

  const auto seqs = f.upstream_nack_seqs();
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 9);
  EXPECT_EQ(f.node.stats().nacks_upstream, 1u);
  EXPECT_EQ(f.node.stats().nacks_absorbed, 1u);

  // The repair arrives from upstream: both waiters get it exactly once, and
  // it is not re-fanned as fresh media on later packets.
  a.media.clear();
  b.media.clear();
  f.node.on_upstream_datagram(media_datagram(9));
  ASSERT_EQ(a.media.size(), 1u);
  ASSERT_EQ(b.media.size(), 1u);
  EXPECT_EQ(a.media[0], media_datagram(9));
  EXPECT_EQ(f.node.stats().repairs_forwarded, 1u);
}

TEST(RelayNode, RelayDetectedGapIsNackedUpstreamAndRepairFansToAll) {
  Fixture f;
  UdpLegProbe a, b;
  f.node.add_leg(a.endpoint());
  f.node.add_leg(b.endpoint());
  f.feed_media(0);
  f.feed_media(1);
  f.feed_media(3);  // gap: 2 lost on the upstream link
  f.loop.run_until(f.loop.now() + sim_ms(50));

  const auto seqs = f.upstream_nack_seqs();
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 2);
  EXPECT_EQ(f.node.stats().gap_nacks, 1u);

  // A relay-detected gap was never forwarded anywhere, so the repair goes
  // to every leg.
  a.media.clear();
  b.media.clear();
  f.node.on_upstream_datagram(media_datagram(2));
  ASSERT_EQ(a.media.size(), 1u);
  ASSERT_EQ(b.media.size(), 1u);
  EXPECT_EQ(a.media[0], media_datagram(2));
}

TEST(RelayNode, CoalescesSubtreePlisIntoOneUpstreamRefresh) {
  Fixture f;
  UdpLegProbe a, b;
  const LegId leg_a = f.node.add_leg(a.endpoint());
  const LegId leg_b = f.node.add_leg(b.endpoint());
  f.feed_media(0);

  PictureLossIndication pli;
  pli.sender_ssrc = 0x77;
  pli.media_ssrc = kMediaSsrc;
  f.node.on_leg_packet(leg_a, pli.serialize());
  f.node.on_leg_packet(leg_b, pli.serialize());
  EXPECT_EQ(f.upstream_pli_count(), 1u);
  EXPECT_EQ(f.node.stats().plis_upstream, 1u);
  EXPECT_EQ(f.node.stats().plis_coalesced, 1u);

  // Outside the window the next PLI is forwarded again.
  f.loop.run_until(f.loop.now() + f.node.options().pli_coalesce_us + 1);
  f.node.on_leg_packet(leg_a, pli.serialize());
  EXPECT_EQ(f.upstream_pli_count(), 2u);
}

// Flash-crowd wave batching (pli_batch_us): the first leg PLI of a wave
// arms a timer instead of forwarding immediately, the rest of the wave
// folds into it, and exactly one upstream PLI goes out at expiry — the PLI
// analogue of nack_flush_us, and what keeps a kJoinFlood's PLI storm from
// multiplying across relay tiers (docs/LATEJOIN.md §6).
TEST(RelayNode, BatchesPliWaveIntoOneDeferredUpstreamRefresh) {
  RelayOptions opts;
  opts.pli_batch_us = sim_ms(20);
  Fixture f(opts);
  UdpLegProbe a, b, c;
  const LegId leg_a = f.node.add_leg(a.endpoint());
  const LegId leg_b = f.node.add_leg(b.endpoint());
  const LegId leg_c = f.node.add_leg(c.endpoint());
  f.feed_media(0);

  PictureLossIndication pli;
  pli.sender_ssrc = 0x77;
  pli.media_ssrc = kMediaSsrc;
  f.node.on_leg_packet(leg_a, pli.serialize());  // arms the wave
  f.node.on_leg_packet(leg_b, pli.serialize());
  f.node.on_leg_packet(leg_c, pli.serialize());
  // Nothing upstream yet: the demand is held for the rest of the wave.
  EXPECT_EQ(f.upstream_pli_count(), 0u);
  EXPECT_EQ(f.node.stats().plis_batched, 2u);

  f.loop.run_until(f.loop.now() + opts.pli_batch_us + 1);
  EXPECT_EQ(f.upstream_pli_count(), 1u);
  EXPECT_EQ(f.node.stats().plis_upstream, 1u);

  // The flush anchors the coalesce window: a straggler inside it is
  // absorbed by the refresh already on its way, not re-batched.
  f.node.on_leg_packet(leg_a, pli.serialize());
  EXPECT_EQ(f.upstream_pli_count(), 1u);
  EXPECT_EQ(f.node.stats().plis_coalesced, 1u);
  EXPECT_EQ(f.node.stats().plis_batched, 2u);

  // A second wave past the coalesce window arms and flushes again.
  f.loop.run_until(f.loop.now() + f.node.options().pli_coalesce_us + 1);
  f.node.on_leg_packet(leg_b, pli.serialize());
  EXPECT_EQ(f.upstream_pli_count(), 1u);  // deferred again
  f.loop.run_until(f.loop.now() + opts.pli_batch_us + 1);
  EXPECT_EQ(f.upstream_pli_count(), 2u);
}

// An armed batch dies with the node: stop() quiesces the wave, and the
// timer's expiry must not demand a refresh on behalf of a dead subtree.
TEST(RelayNode, StopQuiescesAnArmedPliBatch) {
  RelayOptions opts;
  opts.pli_batch_us = sim_ms(20);
  Fixture f(opts);
  UdpLegProbe a;
  const LegId leg_a = f.node.add_leg(a.endpoint());
  f.feed_media(0);

  PictureLossIndication pli;
  pli.sender_ssrc = 0x77;
  pli.media_ssrc = kMediaSsrc;
  f.node.on_leg_packet(leg_a, pli.serialize());
  f.node.stop();
  f.loop.run_until(f.loop.now() + opts.pli_batch_us + 1);
  EXPECT_EQ(f.upstream_pli_count(), 0u);
  EXPECT_EQ(f.node.stats().plis_upstream, 0u);
}

TEST(RelayNode, AggregatesWorstCaseReceiverReportUpstream) {
  RelayOptions opts;
  opts.report_interval_us = sim_ms(100);
  Fixture f(opts);
  UdpLegProbe a, b;
  const LegId leg_a = f.node.add_leg(a.endpoint());
  const LegId leg_b = f.node.add_leg(b.endpoint());
  f.node.start();
  f.feed_media(0);
  f.feed_media(1);

  // Leg A reports heavy loss, leg B is clean but further behind.
  ReportBlock block_a;
  block_a.ssrc = kMediaSsrc;
  block_a.fraction_lost = 64;
  block_a.cumulative_lost = 10;
  block_a.ext_highest_seq = 1;
  block_a.jitter = 500;
  ReceiverReport rr_a;
  rr_a.ssrc = 0x77;
  rr_a.blocks.push_back(block_a);
  f.node.on_leg_packet(leg_a, rr_a.serialize());

  ReportBlock block_b = block_a;
  block_b.fraction_lost = 0;
  block_b.cumulative_lost = 0;
  block_b.ext_highest_seq = 0;  // ignored: a leg that never saw media
  block_b.jitter = 900;
  ReceiverReport rr_b;
  rr_b.ssrc = 0x78;
  rr_b.blocks.push_back(block_b);
  f.node.on_leg_packet(leg_b, rr_b.serialize());

  f.loop.run_until(f.loop.now() + sim_ms(150));

  const ReceiverReport* up = nullptr;
  std::vector<ReceiverReport> found;
  for (const Bytes& dgram : f.upstream) {
    auto msgs = parse_rtcp_compound(dgram);
    if (!msgs.ok()) continue;
    for (const RtcpMessage& m : *msgs) {
      if (const auto* rr = std::get_if<ReceiverReport>(&m)) found.push_back(*rr);
    }
  }
  ASSERT_FALSE(found.empty());
  up = &found.back();
  ASSERT_EQ(up->blocks.size(), 1u);
  EXPECT_EQ(up->ssrc, f.node.ssrc());
  EXPECT_EQ(up->blocks[0].ssrc, kMediaSsrc);
  // Worst case across the relay's own (clean) reception and both legs.
  EXPECT_EQ(up->blocks[0].fraction_lost, 64);
  EXPECT_EQ(up->blocks[0].cumulative_lost, 10u);
  EXPECT_GE(up->blocks[0].jitter, 900u);
  EXPECT_EQ(up->blocks[0].ext_highest_seq, 1u);
  EXPECT_EQ(f.node.stats().rrs_received, 2u);
  EXPECT_GE(f.node.stats().rrs_aggregated, 1u);
  ASSERT_NE(f.node.leg_last_rr(leg_a), nullptr);
  EXPECT_EQ(f.node.leg_last_rr(leg_a)->fraction_lost, 64);
}

TEST(RelayNode, BacklogGateShedsOnlyTheSlowTcpLeg) {
  Fixture f;
  UdpLegProbe healthy;
  f.node.add_leg(healthy.endpoint());

  std::size_t backlog = 0;
  Bytes slow_bytes;
  LegEndpoint slow;
  slow.kind = LegEndpoint::Kind::kTcp;
  slow.write_gather = [&slow_bytes](std::span<const BytesView> parts) {
    std::size_t total = 0;
    for (const BytesView& p : parts) {
      slow_bytes.insert(slow_bytes.end(), p.begin(), p.end());
      total += p.size();
    }
    return total;
  };
  slow.backlog = [&backlog] { return backlog; };
  f.node.add_leg(std::move(slow));

  f.feed_media(0);
  backlog = f.node.options().leg_backlog_limit + 1;  // §7 spike
  f.feed_media(1);
  f.feed_media(2);
  backlog = 0;
  f.feed_media(3);

  EXPECT_EQ(healthy.media.size(), 4u);  // untouched by the sibling's spike
  EXPECT_EQ(f.node.stats().leg_drops_backlog, 2u);
  // The TCP leg received frames 0 and 3 as RFC 4571 frames.
  Bytes expected;
  for (std::uint16_t s : {0, 3}) {
    const Bytes wire = media_datagram(s);
    expected.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
    expected.push_back(static_cast<std::uint8_t>(wire.size()));
    expected.insert(expected.end(), wire.begin(), wire.end());
  }
  EXPECT_EQ(slow_bytes, expected);
  // Full gather acceptance: nothing was re-staged.
  EXPECT_EQ(f.node.stats().payload_bytes_copied, 0u);
}

TEST(RelayNode, TokenBucketShedsOnlyTheStarvedUdpLeg) {
  Fixture f;
  UdpLegProbe healthy, starved;
  f.node.add_leg(healthy.endpoint());
  LegConfig cfg;
  cfg.rate_bps = 8;  // ~1 byte/s: the first burst is all it ever gets
  cfg.burst_bytes = media_datagram(0).size();
  f.node.add_leg(starved.endpoint(), cfg);

  for (std::uint16_t s = 0; s < 4; ++s) f.feed_media(s);

  EXPECT_EQ(healthy.media.size(), 4u);
  EXPECT_EQ(starved.media.size(), 1u);  // burst covered exactly one packet
  EXPECT_EQ(f.node.stats().leg_drops_rate, 3u);
}

TEST(RelayNode, ForwardsUpstreamControlVerbatimToEveryLeg) {
  Fixture f;
  UdpLegProbe a, b;
  f.node.add_leg(a.endpoint());
  f.node.add_leg(b.endpoint());

  SenderReport sr;
  sr.ssrc = kMediaSsrc;
  sr.ntp_timestamp = 0x0123456789ABCDEFull;
  sr.rtp_timestamp = 90'000;
  sr.packet_count = 10;
  sr.octet_count = 1000;
  const Bytes wire = sr.serialize();
  f.node.on_upstream_datagram(wire);

  ASSERT_EQ(a.control.size(), 1u);
  ASSERT_EQ(b.control.size(), 1u);
  EXPECT_EQ(a.control[0], wire);
  EXPECT_EQ(b.control[0], wire);
  EXPECT_EQ(f.node.stats().control_forwarded, 1u);
  EXPECT_TRUE(a.media.empty());
}

TEST(RelayNode, PassesHipAndBfcpUplinkThroughUnchanged) {
  Fixture f;
  UdpLegProbe a;
  const LegId leg = f.node.add_leg(a.endpoint());

  RtpPacket hip;
  hip.payload_type = kHipPayloadType;
  hip.sequence = 42;
  hip.ssrc = 0x5151;
  hip.payload = {1, 2, 3};
  const Bytes hip_wire = hip.serialize();
  f.node.on_leg_packet(leg, hip_wire);

  const Bytes bfcp_wire = {0x20, 0x01, 0x00, 0x00};  // BFCP ver-1 header
  f.node.on_leg_packet(leg, bfcp_wire);

  ASSERT_EQ(f.upstream.size(), 2u);
  EXPECT_EQ(f.upstream[0], hip_wire);
  EXPECT_EQ(f.upstream[1], bfcp_wire);
  EXPECT_EQ(f.node.stats().hip_upstream, 1u);
  EXPECT_EQ(f.node.stats().bfcp_upstream, 1u);
}

TEST(RelayNode, StreamUpstreamIngestMatchesDatagramIngest) {
  Fixture f;
  UdpLegProbe a;
  f.node.add_leg(a.endpoint());

  // The same two packets, RFC 4571-framed and fed in awkward split chunks.
  Bytes stream;
  for (std::uint16_t s : {5, 6}) {
    const Bytes wire = media_datagram(s);
    stream.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
    stream.push_back(static_cast<std::uint8_t>(wire.size()));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  f.node.on_upstream_stream(BytesView(stream.data(), 3));
  f.node.on_upstream_stream(
      BytesView(stream.data() + 3, stream.size() - 3));

  ASSERT_EQ(a.media.size(), 2u);
  EXPECT_EQ(a.media[0], media_datagram(5));
  EXPECT_EQ(a.media[1], media_datagram(6));
}

TEST(RelayNode, PublishesTelemetryUnderItsPrefix) {
  RelayOptions opts;
  opts.metrics_prefix = "relay.r9.";
  EventLoop loop;
  RelayNode node(loop, opts);
  UdpLegProbe a;
  node.add_leg(a.endpoint());
  node.on_upstream_datagram(media_datagram(0));

  const auto snap = node.telemetry().snapshot();
  EXPECT_TRUE(snap.has_counter("relay.r9.upstream_packets"));
  EXPECT_EQ(snap.counter("relay.r9.upstream_packets"), 1u);
  EXPECT_EQ(snap.counter("relay.r9.forwarded_packets"), 1u);
  EXPECT_EQ(snap.gauge("relay.r9.legs"), 1);
}

// ----- self-healing: watchdog, orphan freeze, adoption, epochs ----------

/// Watchdog knobs small enough to run a full escalation in a short test,
/// jitter off so expiry instants are exact.
RelayOptions watchdog_opts() {
  RelayOptions opts;
  opts.upstream_timeout_us = sim_ms(200);
  opts.probe_interval_us = sim_ms(50);
  opts.probe_count = 2;
  opts.watchdog_jitter = 0.0;
  return opts;
}

Bytes media_datagram_ssrc(std::uint32_t ssrc, std::uint16_t seq) {
  RtpPacket pkt;
  pkt.marker = true;
  pkt.payload_type = kRemotingPayloadType;
  pkt.sequence = seq;
  pkt.timestamp = 9000u * seq;
  pkt.ssrc = ssrc;
  pkt.payload.assign(64, 0xAB);
  return pkt.serialize();
}

TEST(RelayNode, WatchdogProbesThenDeclaresUpstreamDead) {
  Fixture f(watchdog_opts());
  f.node.start();
  bool lost = false;
  f.node.set_upstream_lost([&lost] { lost = true; });
  f.feed_media(1);  // first activity arms the watchdog

  // Timeout at 200ms, probes at 200 and 250ms, declaration at 300ms.
  f.loop.run_until(sim_ms(199));
  EXPECT_FALSE(f.node.orphaned());
  EXPECT_EQ(f.node.stats().watchdog_probes, 0u);
  f.loop.run_until(sim_ms(260));
  EXPECT_EQ(f.node.stats().watchdog_probes, 2u);
  EXPECT_FALSE(lost);
  f.loop.run_until(sim_ms(301));
  EXPECT_TRUE(lost);
  EXPECT_TRUE(f.node.orphaned());
  EXPECT_EQ(f.node.stats().upstream_lost, 1u);
  EXPECT_EQ(f.node.last_detect_latency_us(), sim_ms(300));
}

TEST(RelayNode, WatchdogSleepsOutRemainderWhileUpstreamActive) {
  Fixture f(watchdog_opts());
  f.node.start();
  bool lost = false;
  f.node.set_upstream_lost([&lost] { lost = true; });
  // Media every 100ms keeps idle under the 200ms threshold throughout.
  for (int i = 0; i < 10; ++i) {
    f.node.on_upstream_datagram(media_datagram(static_cast<std::uint16_t>(i)));
    f.loop.run_until(f.loop.now() + sim_ms(100));
  }
  EXPECT_FALSE(lost);
  EXPECT_FALSE(f.node.orphaned());
  EXPECT_EQ(f.node.stats().watchdog_probes, 0u);
}

TEST(RelayNode, OrphanFreezesForwardingButServesSubtreeFromCache) {
  Fixture f(watchdog_opts());
  f.node.start();
  UdpLegProbe a;
  const LegId leg = f.node.add_leg(a.endpoint());
  for (std::uint16_t s = 1; s <= 5; ++s) f.feed_media(s);
  f.loop.run_until(sim_ms(400));  // escalation drains: orphaned
  ASSERT_TRUE(f.node.orphaned());
  const std::size_t media_before = a.media.size();
  const std::size_t upstream_before = f.upstream.size();

  // Media straggling in from the dead parent is frozen out, not forwarded.
  f.feed_media(6);
  EXPECT_EQ(a.media.size(), media_before);
  EXPECT_EQ(f.node.stats().frozen_drops, 1u);

  // A cached sequence is still served to the subtree during the blackout…
  f.node.on_leg_packet(leg, GenericNack::for_sequences(
                                0xB0B, f.node.upstream_ssrc(), {3}).serialize());
  EXPECT_EQ(f.node.stats().rtx_served, 1u);
  EXPECT_EQ(a.media.size(), media_before + 1);

  // …while a miss is absorbed (no dead-parent request), and so are PLIs.
  f.node.on_leg_packet(leg, GenericNack::for_sequences(
                                0xB0B, f.node.upstream_ssrc(), {40}).serialize());
  PictureLossIndication pli;
  pli.sender_ssrc = 0xB0B;
  pli.media_ssrc = f.node.upstream_ssrc();
  f.node.on_leg_packet(leg, pli.serialize());
  f.loop.run_until(f.loop.now() + sim_ms(600));
  EXPECT_EQ(f.upstream.size(), upstream_before);
  EXPECT_GT(f.node.stats().nacks_absorbed, 0u);
  EXPECT_GT(f.node.stats().plis_coalesced, 0u);
}

TEST(RelayNode, AdoptUpstreamResyncsIntoAFreshEpoch) {
  Fixture f(watchdog_opts());
  f.node.start();
  UdpLegProbe a;
  f.node.add_leg(a.endpoint());
  for (std::uint16_t s = 1; s <= 5; ++s) f.feed_media(s);
  f.loop.run_until(sim_ms(400));
  ASSERT_TRUE(f.node.orphaned());

  f.node.adopt_upstream();
  EXPECT_FALSE(f.node.orphaned());
  EXPECT_EQ(f.node.upstream_epoch(), 1u);
  EXPECT_EQ(f.node.stats().adoptions, 1u);
  EXPECT_EQ(f.node.stats().cache_dropped, 5u);  // stale repairs discarded
  EXPECT_EQ(f.node.cache().size(), 0u);
  ASSERT_FALSE(f.upstream.empty());  // the §4.4 refresh request went out
  EXPECT_GE(f.upstream_pli_count(), 1u);
  EXPECT_EQ(f.node.upstream_ssrc(), 0u);  // new epoch: identity re-learned

  // First media of the new epoch completes the resync; a different SSRC is
  // the new parent's own stream, not a duplicate of the old one.
  f.loop.run_until(f.loop.now() + sim_ms(40));
  f.node.on_upstream_datagram(media_datagram_ssrc(0xD00D, 900));
  EXPECT_EQ(f.node.stats().upstream_duplicates, 0u);
  EXPECT_EQ(f.node.stats().decode_errors, 0u);
  EXPECT_EQ(f.node.upstream_ssrc(), 0xD00Du);
  EXPECT_EQ(f.node.last_resync_duration_us(), sim_ms(40));
}

TEST(RelayNode, FailoverLossIsCountedWhenTheSsrcSurvives) {
  Fixture f(watchdog_opts());
  f.node.start();
  for (std::uint16_t s = 1; s <= 5; ++s) f.feed_media(s);
  f.loop.run_until(sim_ms(400));
  ASSERT_TRUE(f.node.orphaned());
  f.node.adopt_upstream();
  // Same stream via the new parent, resuming at 9: seqs 6,7,8 died with
  // the old parent.
  f.feed_media(9);
  EXPECT_EQ(f.node.stats().failover_lost_packets, 3u);
}

TEST(RelayNode, UpstreamSsrcChangeBeginsANewEpochNotDuplicates) {
  Fixture f;
  f.node.start();
  UdpLegProbe a;
  f.node.add_leg(a.endpoint());
  for (std::uint16_t s = 1; s <= 3; ++s) f.feed_media(s);
  // The upstream restarts with a new SSRC and a colliding sequence space.
  for (std::uint16_t s = 1; s <= 3; ++s) {
    f.node.on_upstream_datagram(media_datagram_ssrc(0xFEED, s));
  }
  EXPECT_EQ(f.node.stats().ssrc_epochs, 1u);
  EXPECT_EQ(f.node.upstream_epoch(), 1u);
  EXPECT_EQ(f.node.stats().upstream_duplicates, 0u);
  EXPECT_EQ(f.node.stats().decode_errors, 0u);
  EXPECT_EQ(f.node.stats().upstream_packets, 6u);
  EXPECT_EQ(a.media.size(), 6u);
  EXPECT_EQ(f.node.upstream_ssrc(), 0xFEEDu);
}

TEST(RelayNode, StalledNodeFreezesAndThawRestartsTheGracePeriod) {
  Fixture f(watchdog_opts());
  f.node.start();
  UdpLegProbe a;
  const LegId leg = f.node.add_leg(a.endpoint());
  f.feed_media(1);
  f.node.set_stalled(true);
  ASSERT_TRUE(f.node.stalled());

  // Ingest, leg uplink and the probe ladder are all frozen while wedged —
  // far past the timeout, the parent is never declared dead.
  f.feed_media(2);
  EXPECT_EQ(f.node.stats().frozen_drops, 1u);
  f.node.on_leg_packet(leg, GenericNack::for_sequences(
                                0xB0B, f.node.upstream_ssrc(), {1}).serialize());
  EXPECT_EQ(f.node.stats().nacks_received, 0u);
  f.loop.run_until(sim_ms(900));
  EXPECT_FALSE(f.node.orphaned());
  EXPECT_EQ(f.node.stats().watchdog_probes, 0u);

  // Thaw: forwarding resumes and the upstream gets a fresh grace period.
  f.node.set_stalled(false);
  f.feed_media(3);
  EXPECT_EQ(a.media.size(), 2u);
  f.loop.run_until(f.loop.now() + sim_ms(150));
  EXPECT_FALSE(f.node.orphaned());
}

TEST(RelayNode, StopQuiescesRepairStateAndWithdrawsLegGauges) {
  RelayOptions opts = watchdog_opts();
  opts.metrics_prefix = "relay.r7.";
  opts.nack_flush_us = sim_ms(5);
  Fixture f(opts);
  f.node.start();
  UdpLegProbe a;
  LegConfig cfg;
  cfg.rate_bps = 1'000'000;
  const LegId leg = f.node.add_leg(a.endpoint(), cfg);
  for (std::uint16_t s = 1; s <= 4; ++s) f.feed_media(s);

  // A cache miss leaves a pending upstream NACK behind…
  f.node.on_leg_packet(leg, GenericNack::for_sequences(
                                0xB0B, f.node.upstream_ssrc(), {90}).serialize());
  const std::size_t upstream_before = f.upstream.size();
  f.node.stop();
  // …which stop() must abandon: no flush fires after the quiesce.
  f.loop.run_until(f.loop.now() + sim_ms(700));
  EXPECT_EQ(f.upstream.size(), upstream_before);
  // The cache is dropped — a stopped node can never serve a stale repair —
  // and the monotone rtx totals survive the drop.
  EXPECT_EQ(f.node.cache().size(), 0u);
  EXPECT_EQ(f.node.stats().cache_dropped, 4u);
  EXPECT_EQ(f.node.rtx_misses_total(), 1u);
  // Per-leg gauges are withdrawn (zero, not last-known) at the snapshot.
  const auto snap = f.node.telemetry().snapshot();
  EXPECT_EQ(snap.gauge("relay.r7.leg" + std::to_string(leg) + ".rate_bps"), 0);

  // start() re-enables forwarding with a cold cache.
  f.node.start();
  f.feed_media(10);
  EXPECT_EQ(a.media.size(), 5u);
  const auto snap2 = f.node.telemetry().snapshot();
  EXPECT_EQ(snap2.gauge("relay.r7.leg" + std::to_string(leg) + ".rate_bps"),
            1'000'000);
}

TEST(RelayNode, FoldStatsSeedsLifetimeCountersMonotonically) {
  EventLoop loop;
  RelayNode node(loop, {});
  RelayNode::Stats prior;
  prior.upstream_packets = 100;
  prior.forwarded_packets = 250;
  prior.upstream_lost = 1;
  node.fold_stats(prior, /*rtx_hits=*/7, /*rtx_misses=*/3, /*rtx_evictions=*/2);
  EXPECT_EQ(node.stats().upstream_packets, 100u);
  EXPECT_EQ(node.stats().forwarded_packets, 250u);
  EXPECT_EQ(node.stats().upstream_lost, 1u);
  EXPECT_EQ(node.rtx_hits_total(), 7u);
  EXPECT_EQ(node.rtx_misses_total(), 3u);
  EXPECT_EQ(node.rtx_evictions_total(), 2u);
  node.on_upstream_datagram(media_datagram(1));
  EXPECT_EQ(node.stats().upstream_packets, 101u);
}

}  // namespace
}  // namespace ads::relay
