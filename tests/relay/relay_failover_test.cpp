// Golden failover: a depth-3 relay tree (AH → r1 → r2 → r3 → leaf viewer)
// loses r2 cold in mid-broadcast. r3's liveness watchdog must detect the
// silence, escalate through its probe ladder, declare the upstream dead and
// hand the orphaned subtree to the session, which re-parents r3 under the
// nearest live ancestor (r1) and resyncs it through the §4.4 late-join path
// (adoption PLI → AH full refresh). The acceptance bar from the issue:
//   * the leaf's decoded replica is pixel-identical to a direct viewer's
//     within a bounded settle window after the failover,
//   * no stale repair crosses the epoch boundary (the retransmission cache
//     is dropped at adoption; the leaf decodes cleanly),
//   * the whole sequence is deterministic and holds across 5 seeds.
// Also covered here: the configured-backup ladder rung and the scripted
// cold-restart path (crash + restart faster than the child's watchdog).
#include <gtest/gtest.h>

#include <memory>

#include "capture/apps.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "rtp/rtcp.hpp"
#include "telemetry/telemetry.hpp"

namespace ads {
namespace {

AppHostOptions failover_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

relay::RelayOptions failover_relay_opts(std::uint64_t seed) {
  relay::RelayOptions ropts;
  ropts.report_interval_us = sim_ms(200);
  ropts.nack_flush_us = sim_ms(5);
  ropts.nack_holdoff_us = sim_ms(300);
  ropts.upstream_timeout_us = sim_ms(500);
  ropts.probe_interval_us = sim_ms(100);
  ropts.probe_count = 2;
  ropts.seed = 0xBE1A ^ seed;
  return ropts;
}

/// Pixel-exact check of a replica against the AH's last captured frame.
void expect_matches_truth(SharingSession& session, const Participant& p,
                          const char* what, std::uint64_t seed) {
  const Image& truth = session.host().capturer().last_frame();
  const Image replica = p.screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0) << what << " seed " << seed;
}

TEST(RelayFailover, OrphanedSubtreeReparentsAndLeafMatchesDirectViewer) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SharingSession session(failover_host());
    AppHost& host = session.host();
    const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
    host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

    auto& r1 = session.add_relay(failover_relay_opts(seed));
    auto& r2 = session.add_relay_child(r1, failover_relay_opts(seed));
    auto& r3 = session.add_relay_child(r2, failover_relay_opts(seed));

    ParticipantOptions popts;
    popts.screen_width = 320;
    popts.screen_height = 240;
    auto& leaf = session.add_relay_viewer(r3, popts);
    auto& direct = session.add_udp_participant(popts);
    direct.participant->join();
    // Late-join the relay tree: one PLI refreshes every level at once.
    PictureLossIndication pli;
    host.on_uplink_packet(r1.upstream_id, pli.serialize());

    host.start();
    session.loop().run_until(sim_ms(1500));
    ASSERT_GT(leaf.participant->stats().rtp_packets, 0u) << "seed " << seed;

    // --- the crash: r2 dies cold, orphaning the r3 subtree --------------
    session.crash_relay(r2);
    const SimTime crash_at = session.loop().now();
    // Detection is bounded: timeout + probe_count jittered intervals.
    const relay::RelayOptions& o = r3.node->options();
    const SimTime detect_bound =
        o.upstream_timeout_us +
        static_cast<SimTime>(static_cast<double>(o.probe_interval_us) *
                             (1.0 + o.watchdog_jitter)) *
            o.probe_count;
    session.loop().run_until(crash_at + detect_bound + sim_ms(50));

    // The subtree failed over: r3 now hangs off r1 (the dead parent's own
    // parent — the first live rung of the ladder), resynced and unfrozen.
    EXPECT_EQ(session.relay_failovers(), 1u) << "seed " << seed;
    EXPECT_EQ(r3.parent, &r1) << "seed " << seed;
    EXPECT_EQ(r3.depth, 2) << "seed " << seed;
    EXPECT_FALSE(r3.node->orphaned()) << "seed " << seed;
    EXPECT_EQ(r3.node->stats().upstream_lost, 1u) << "seed " << seed;
    EXPECT_EQ(r3.node->stats().adoptions, 1u) << "seed " << seed;
    EXPECT_GE(r3.node->last_detect_latency_us(), o.upstream_timeout_us);
    EXPECT_LE(r3.node->last_detect_latency_us(), detect_bound);

    // Settle within a bounded post-failover window, then compare streams.
    session.loop().run_until(crash_at + detect_bound + sim_sec(2));
    host.stop();
    // Drain in-flight deliveries — but stay inside the relays' grace
    // period: a longer silent drain would (correctly) orphan the whole
    // tree against the now-stopped AH.
    session.run_for(sim_ms(300));

    // The adoption PLI completed the §4.4 resync: the leaf behind the
    // re-parented relay decodes the same screen as the direct viewer.
    expect_matches_truth(session, *leaf.participant, "leaf viewer", seed);
    expect_matches_truth(session, *direct.participant, "direct viewer", seed);
    EXPECT_GT(r3.node->last_resync_duration_us(), 0u) << "seed " << seed;
    EXPECT_EQ(leaf.participant->stats().decode_errors, 0u) << "seed " << seed;

    // Epoch hygiene via telemetry: the old epoch's repairs were discarded
    // at adoption (none could cross the boundary) and the failover counters
    // landed under the node's prefix.
    const auto snap = session.telemetry().snapshot();
    EXPECT_EQ(snap.counter("relay.r3.failover.adoptions"), 1u);
    EXPECT_EQ(snap.counter("relay.r3.failover.upstream_lost"), 1u);
    EXPECT_GT(snap.counter("relay.r3.failover.cache_dropped"), 0u);
    EXPECT_EQ(snap.gauge("relay.r3.failover.orphaned"), 0);
    EXPECT_EQ(snap.counter("recovery.relay_crashes"), 1u);
    EXPECT_EQ(snap.counter("recovery.relay_failovers"), 1u);
    EXPECT_EQ(r3.node->upstream_epoch(), 1u) << "seed " << seed;
  }
}

TEST(RelayFailover, ConfiguredBackupOutranksTheGrandparent) {
  SharingSession session(failover_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& r1 = session.add_relay(failover_relay_opts(7));
  auto& r2a = session.add_relay_child(r1, failover_relay_opts(7));
  auto& r2b = session.add_relay_child(r1, failover_relay_opts(7));
  auto& r3 = session.add_relay_child(r2a, failover_relay_opts(7));
  session.set_relay_backup(r3, &r2b);

  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());
  host.start();
  session.loop().run_until(sim_ms(1000));

  session.crash_relay(r2a);
  session.loop().run_until(session.loop().now() + sim_sec(2));
  host.stop();

  // The sibling adopted the subtree; the grandparent rung was never needed.
  EXPECT_EQ(r3.parent, &r2b);
  EXPECT_EQ(r3.depth, 3);
  EXPECT_FALSE(r3.node->orphaned());
  EXPECT_GT(r3.node->stats().upstream_packets, 0u);
  EXPECT_EQ(session.relay_failovers(), 1u);
}

TEST(RelayFailover, FastRestartRejoinsBeforeTheChildEscalates) {
  SharingSession session(failover_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& r1 = session.add_relay(failover_relay_opts(9));
  auto& r2 = session.add_relay_child(r1, failover_relay_opts(9));
  auto& r3 = session.add_relay_child(r2, failover_relay_opts(9));
  ParticipantOptions popts;
  popts.screen_width = 160;
  popts.screen_height = 120;
  auto& leaf = session.add_relay_viewer(r3, popts);

  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());
  host.start();
  session.loop().run_until(sim_ms(1000));

  // Crash and restart inside the child's grace period (500ms timeout):
  // r3 never orphans, r2 comes back under r1 with folded counters.
  session.crash_relay(r2);
  const relay::RelayNode::Stats retired = r2.retired;
  session.loop().run_until(session.loop().now() + sim_ms(300));
  session.restart_relay(r2);
  const std::uint64_t leaf_packets_at_restart =
      leaf.participant->stats().rtp_packets;
  session.loop().run_until(session.loop().now() + sim_sec(2));
  host.stop();
  session.run_for(sim_ms(300));  // drain, staying inside the grace period

  EXPECT_TRUE(r2.alive);
  EXPECT_EQ(session.relay_crashes(), 1u);
  EXPECT_EQ(session.relay_restarts(), 1u);
  EXPECT_EQ(session.relay_failovers(), 0u);
  EXPECT_FALSE(r3.node->orphaned());
  EXPECT_EQ(r3.parent, &r2);
  // Media flows to the leaf again through the restarted node.
  EXPECT_GT(leaf.participant->stats().rtp_packets, leaf_packets_at_restart);
  // The fold kept relay.r2.* monotone across the incarnation boundary.
  EXPECT_GE(r2.node->stats().forwarded_packets, retired.forwarded_packets);
  EXPECT_GT(retired.forwarded_packets, 0u);
}

TEST(RelayFailover, RootRelayCrashRestartReusesTheAhSlot) {
  SharingSession session(failover_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

  auto& r1 = session.add_relay(failover_relay_opts(11));
  auto& r2 = session.add_relay_child(r1, failover_relay_opts(11));
  ParticipantOptions popts;
  popts.screen_width = 320;
  popts.screen_height = 240;
  auto& leaf = session.add_relay_viewer(r2, popts);

  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());
  host.start();
  session.loop().run_until(sim_ms(1000));

  const ParticipantId id_before = r1.upstream_id;
  const std::size_t count_before = host.participant_count();

  // Crash the ROOT: its AH slot must be released, not leaked — a leaked
  // slot would make the restart allocate a second id whose endpoint feeds
  // the same down channel (duplicated media, no same-id resync).
  session.crash_relay(r1);
  EXPECT_EQ(host.participant_count(), count_before - 1);
  session.loop().run_until(session.loop().now() + sim_ms(300));
  session.restart_relay(r1);
  EXPECT_EQ(r1.upstream_id, id_before);
  EXPECT_EQ(host.participant_count(), count_before);

  const std::uint64_t leaf_packets_at_restart =
      leaf.participant->stats().rtp_packets;
  session.loop().run_until(session.loop().now() + sim_sec(2));
  host.stop();
  session.run_for(sim_ms(300));  // drain, staying inside the grace period

  EXPECT_TRUE(r1.alive);
  EXPECT_FALSE(r2.node->orphaned());
  EXPECT_EQ(r2.parent, &r1);
  EXPECT_EQ(session.relay_crashes(), 1u);
  EXPECT_EQ(session.relay_restarts(), 1u);
  EXPECT_EQ(session.relay_failovers(), 0u);
  // Media flows to the leaf again through the restarted root, and the
  // subtree converges back onto the shared screen.
  EXPECT_GT(leaf.participant->stats().rtp_packets, leaf_packets_at_restart);
  expect_matches_truth(session, *leaf.participant, "leaf after root restart",
                       11);
}

TEST(RelayFailover, BackupEqualToTheDeadParentIsSkipped) {
  SharingSession session(failover_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& r1 = session.add_relay(failover_relay_opts(13));
  auto& r2 = session.add_relay_child(r1, failover_relay_opts(13));
  auto& r3 = session.add_relay_child(r2, failover_relay_opts(13));
  // Misconfigured (or stale) backup: it points at the very parent whose
  // silence the watchdog is about to declare.
  session.set_relay_backup(r3, &r2);

  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());
  host.start();
  session.loop().run_until(sim_ms(1000));

  // A stall keeps r2 alive (so the backup rung's aliveness check passes)
  // while its legs starve — exactly the case where re-adopting the same
  // parent would re-orphan r3 every watchdog period, forever.
  r2.node->set_stalled(true);
  session.loop().run_until(session.loop().now() + sim_sec(2));
  host.stop();

  EXPECT_EQ(r3.parent, &r1);
  EXPECT_EQ(r3.depth, 2);
  EXPECT_FALSE(r3.node->orphaned());
  EXPECT_EQ(session.relay_failovers(), 1u);
}

TEST(RelayFailover, OverDeepBackupFallsThroughToTheAncestor) {
  SharingSession session(failover_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  // A chain down to the depth bound: adopting under `deep` would need
  // depth kMaxRelayDepth + 1.
  auto& r1 = session.add_relay(failover_relay_opts(17));
  SharingSession::RelayHandle* deep = &r1;
  for (int d = 2; d <= SharingSession::kMaxRelayDepth; ++d) {
    deep = &session.add_relay_child(*deep, failover_relay_opts(17));
  }
  auto& rA = session.add_relay_child(r1, failover_relay_opts(17));
  auto& rB = session.add_relay_child(rA, failover_relay_opts(17));
  session.set_relay_backup(rB, deep);

  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());
  host.start();
  session.loop().run_until(sim_ms(1000));

  session.crash_relay(rA);
  // The automatic path must not throw through the watchdog's event-loop
  // callback: the over-deep backup is treated like a dead one and the
  // ladder climbs to the live ancestor above the dead parent.
  session.loop().run_until(session.loop().now() + sim_sec(2));
  host.stop();

  ASSERT_EQ(deep->depth, SharingSession::kMaxRelayDepth);
  EXPECT_EQ(rB.parent, &r1);
  EXPECT_EQ(rB.depth, 2);
  EXPECT_FALSE(rB.node->orphaned());
  EXPECT_EQ(session.relay_failovers(), 1u);
}

TEST(RelayFailover, CrashPublishesZeroedPerLegGauges) {
  SharingSession session(failover_host());
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 160, 120}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(160, 120, 5));

  auto& r1 = session.add_relay(failover_relay_opts(19));
  ParticipantOptions popts;
  popts.screen_width = 160;
  popts.screen_height = 120;
  relay::LegConfig leg;
  leg.rate_bps = 2'000'000;  // rate-limited: the leg publishes a rate gauge
  auto& viewer = session.add_relay_viewer(r1, popts, {}, leg);

  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());
  host.start();
  session.loop().run_until(sim_ms(1000));

  const std::string gauge =
      "relay.r1.leg" + std::to_string(viewer.leg) + ".rate_bps";
  EXPECT_GT(session.telemetry().snapshot().gauge(gauge), 0);

  session.crash_relay(r1);
  // The dying node pushed one final stopped-state snapshot: its per-leg
  // gauges read zero, not the last-known rate of a forwarder that no
  // longer exists.
  EXPECT_EQ(session.telemetry().snapshot().gauge(gauge), 0);
  host.stop();
}

}  // namespace
}  // namespace ads
