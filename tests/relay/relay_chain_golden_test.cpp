// Byte-identity golden for the cascaded relay tier: a 50-tick scripted
// session runs with one viewer connected directly to the AH and one leaf
// viewer behind a depth-2 relay chain (AH → relay1 → relay2 → leaf). Both
// AH-side participants share the seed-derived stream identity, so the leaf
// must receive the *byte-identical* media stream — while the relays forward
// views with zero payload copies and zero encodes (they have no encoder at
// all), serve a sibling's NACKs from the relay cache without bothering the
// AH, coalesce subtree PLIs, and starve a rate-limited sibling leg without
// touching the observed path.
//
// The script keeps the observed path lossless (direct wiring, no channels):
// loss, repair and starvation all happen on *sibling* legs, which is
// exactly the isolation property the relay tier promises.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "capture/apps.hpp"
#include "core/app_host.hpp"
#include "relay/relay.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_packet.hpp"

namespace ads {
namespace {

constexpr int kTicks = 50;

/// Capturing UDP leg endpoint: media via the view path, control verbatim.
struct LegCapture {
  Bytes media;            ///< serialised RTP stream, concatenated
  std::vector<Bytes> control;
  std::set<std::uint16_t> seqs;

  relay::LegEndpoint endpoint() {
    relay::LegEndpoint ep;
    ep.kind = relay::LegEndpoint::Kind::kUdp;
    ep.send_packet = [this](const PacketView& v) {
      v.serialize_into(media);
      seqs.insert(v.sequence());
      return true;
    };
    ep.send_packet_batch = [this](std::span<const PacketView> pkts) {
      for (const PacketView& v : pkts) {
        v.serialize_into(media);
        seqs.insert(v.sequence());
      }
      return pkts.size();
    };
    ep.send_datagram = [this](BytesView d) {
      control.emplace_back(d.begin(), d.end());
      return true;
    };
    return ep;
  }
};

TEST(RelayChainGolden, LeafBehindDepth2ChainMatchesDirectViewerByteForByte) {
  EventLoop loop;
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.region_band_rows = 64;
  opts.frame_interval_us = sim_ms(100);
  opts.sr_interval_us = sim_ms(500);
  AppHost host(loop, opts);

  const WindowId w1 = host.wm().create({0, 0, 200, 160}, 1);
  const WindowId w2 = host.wm().create({60, 40, 240, 180}, 1);
  host.capturer().attach(w1, std::make_unique<TerminalApp>(200, 160, 5));
  host.capturer().attach(w2, std::make_unique<DocumentApp>(240, 180, 9));

  // --- the relay chain -------------------------------------------------
  relay::RelayOptions r1_opts;
  r1_opts.metrics_prefix = "relay.r1.";
  relay::RelayNode relay1(loop, r1_opts);
  relay::RelayOptions r2_opts;
  r2_opts.metrics_prefix = "relay.r2.";
  r2_opts.seed = 0xBE1B;  // distinct RTCP identity per node
  relay::RelayNode relay2(loop, r2_opts);

  // relay1 leg 1: feeds relay2 (in-process, zero-copy view hand-off).
  relay::LegEndpoint to_r2;
  to_r2.kind = relay::LegEndpoint::Kind::kUdp;
  to_r2.send_packet = [&relay2](const PacketView& v) {
    relay2.on_upstream_packet(v);
    return true;
  };
  to_r2.send_packet_batch = [&relay2](std::span<const PacketView> pkts) {
    return relay2.on_upstream_batch(pkts);
  };
  to_r2.send_datagram = [&relay2](BytesView d) {
    relay2.on_upstream_datagram(Bytes(d.begin(), d.end()));
    return true;
  };
  const relay::LegId leg_r2 = relay1.add_leg(std::move(to_r2));
  relay2.set_upstream([&relay1, leg_r2](BytesView p) {
    relay1.on_leg_packet(leg_r2, p);
    return true;
  });

  // relay1 leg 2: sibling B — drops its deliveries during a scripted window
  // and NACKs afterwards; the repairs must come from relay1's cache.
  int tick_no = 0;
  LegCapture b;
  std::set<std::uint16_t> b_dropped;
  relay::LegEndpoint b_ep;
  b_ep.kind = relay::LegEndpoint::Kind::kUdp;
  b_ep.send_packet = [&](const PacketView& v) {
    if (tick_no >= 10 && tick_no < 16) {
      b_dropped.insert(v.sequence());
      return true;  // accepted by the "link", lost after the relay
    }
    v.serialize_into(b.media);
    b.seqs.insert(v.sequence());
    return true;
  };
  b_ep.send_datagram = [&b](BytesView d) {
    b.control.emplace_back(d.begin(), d.end());
    return true;
  };
  const relay::LegId leg_b = relay1.add_leg(std::move(b_ep));

  // relay2 leg 1: the observed leaf viewer.
  LegCapture leaf;
  const relay::LegId leg_leaf = relay2.add_leg(leaf.endpoint());
  // relay2 leg 2: sibling D, token-bucket starved.
  LegCapture starved;
  relay::LegConfig d_cfg;
  d_cfg.rate_bps = 20'000;
  d_cfg.burst_bytes = 2'000;
  relay2.add_leg(starved.endpoint(), d_cfg);

  // --- AH participants -------------------------------------------------
  // Direct viewer: same endpoint shape as the leaf's leg, wired straight to
  // the AH.
  LegCapture direct;
  HostEndpoint direct_ep;
  direct_ep.kind = HostEndpoint::Kind::kUdp;
  direct_ep.send_packet = [&direct](const PacketView& v) {
    v.serialize_into(direct.media);
    direct.seqs.insert(v.sequence());
    return true;
  };
  direct_ep.send_packet_batch = [&direct](std::span<const PacketView> pkts) {
    for (const PacketView& v : pkts) {
      v.serialize_into(direct.media);
      direct.seqs.insert(v.sequence());
    }
    return pkts.size();
  };
  direct_ep.send_datagram = [&direct](BytesView d) {
    direct.control.emplace_back(d.begin(), d.end());
    return true;
  };
  const ParticipantId direct_id = host.add_participant(std::move(direct_ep));

  // Relay root: the AH's second UDP participant is relay1's upstream.
  HostEndpoint relay_ep;
  relay_ep.kind = HostEndpoint::Kind::kUdp;
  relay_ep.send_packet = [&relay1](const PacketView& v) {
    relay1.on_upstream_packet(v);
    return true;
  };
  relay_ep.send_packet_batch = [&relay1](std::span<const PacketView> pkts) {
    return relay1.on_upstream_batch(pkts);
  };
  relay_ep.send_datagram = [&relay1](BytesView d) {
    relay1.on_upstream_datagram(Bytes(d.begin(), d.end()));
    return true;
  };
  const ParticipantId relay_id = host.add_participant(std::move(relay_ep));
  relay1.set_upstream([&host, relay_id](BytesView p) {
    host.on_uplink_packet(relay_id, p);
    return true;
  });
  relay1.start();
  relay2.start();

  // --- the 50-tick script ----------------------------------------------
  const Image icon(6, 9, Pixel{255, 0, 0, 255});
  auto paired_pli = [&] {
    // Leaf PLI travels the chain: relay2 forwards it up, relay1 forwards it
    // to the AH. The direct viewer sends its own in the same tick, so both
    // AH participants schedule the identical full refresh. Sibling B's PLI
    // lands inside relay1's coalesce window and is absorbed.
    PictureLossIndication pli;
    pli.sender_ssrc = 0x1EAF;
    pli.media_ssrc = relay2.upstream_ssrc();
    relay2.on_leg_packet(leg_leaf, pli.serialize());
    host.on_uplink_packet(direct_id, pli.serialize());
    pli.sender_ssrc = 0xB0B;
    relay1.on_leg_packet(leg_b, pli.serialize());
  };

  for (tick_no = 0; tick_no < kTicks; ++tick_no) {
    if (tick_no == 2) paired_pli();  // late-join refresh for the whole tree
    if (tick_no == 7) host.set_pointer({50, 60});
    if (tick_no == 16) {
      // Sibling B recovers its scripted drop window from relay1's cache.
      ASSERT_FALSE(b_dropped.empty());
      const std::vector<std::uint16_t> lost(b_dropped.begin(), b_dropped.end());
      const GenericNack nack =
          GenericNack::for_sequences(0xB0B, relay1.upstream_ssrc(), lost);
      relay1.on_leg_packet(leg_b, nack.serialize());
    }
    if (tick_no == 23) host.set_pointer({80, 90}, &icon);
    if (tick_no == 30) paired_pli();  // mid-session refresh, outside coalesce
    if (tick_no == 35) host.wm().move(w2, {40, 30});
    host.tick();
    loop.run_until(loop.now() + opts.frame_interval_us);
  }

  // --- byte identity ----------------------------------------------------
  ASSERT_FALSE(direct.media.empty());
  ASSERT_EQ(leaf.media.size(), direct.media.size());
  EXPECT_TRUE(leaf.media == direct.media)
      << "leaf stream diverged from the direct viewer's";
  // Control (SRs) reached the leaf through two relay hops, verbatim.
  ASSERT_FALSE(direct.control.empty());
  EXPECT_TRUE(leaf.control == direct.control);

  // --- zero-copy, zero-encode relays ------------------------------------
  EXPECT_EQ(relay1.stats().payload_bytes_copied, 0u);
  EXPECT_EQ(relay2.stats().payload_bytes_copied, 0u);
  EXPECT_EQ(relay1.stats().upstream_packets, direct.seqs.size());

  // --- sibling-leg isolation did what the script asked -------------------
  // B's losses were healed from relay1's cache; the AH never saw a NACK.
  EXPECT_GT(relay1.stats().rtx_served, 0u);
  EXPECT_EQ(relay1.stats().nacks_upstream, 0u);
  for (std::uint16_t s : b_dropped) {
    EXPECT_TRUE(b.seqs.count(s)) << "seq " << s << " never repaired";
  }
  // B's PLIs were coalesced into the leaf's refresh, one per window.
  EXPECT_EQ(relay1.stats().plis_coalesced, 2u);
  EXPECT_EQ(relay1.stats().plis_upstream, 2u);
  EXPECT_EQ(host.stats().plis_received, 4u);
  // D starved alone: its leg dropped, the leaf's did not.
  EXPECT_GT(relay2.stats().leg_drops_rate, 0u);
  EXPECT_LT(starved.seqs.size(), leaf.seqs.size());
  // The report loop ran: aggregated RRs flowed AH-ward from both relays.
  EXPECT_GT(relay1.stats().rrs_aggregated, 0u);
  EXPECT_GT(relay1.stats().rrs_received, 0u);  // relay2's summaries
}

}  // namespace
}  // namespace ads
