#include "util/checksum.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

Bytes ascii(const char* s) {
  Bytes out;
  while (*s) out.push_back(static_cast<std::uint8_t>(*s++));
  return out;
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 test vector.
  EXPECT_EQ(crc32(ascii("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(ascii("The quick brown fox jumps over the lazy dog")), 0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const Bytes data = ascii("hello, world");
  Crc32 inc;
  inc.update(BytesView(data).subspan(0, 5));
  inc.update(BytesView(data).subspan(5));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, PngIendChunkVector) {
  // The IEND chunk CRC every PNG carries: CRC over the 4 type bytes.
  EXPECT_EQ(crc32(ascii("IEND")), 0xAE426082u);
}

TEST(Adler32, KnownVectors) {
  EXPECT_EQ(adler32({}), 1u);
  // RFC 1950 example often quoted: "Wikipedia" -> 0x11E60398.
  EXPECT_EQ(adler32(ascii("Wikipedia")), 0x11E60398u);
}

TEST(Adler32, LongInputModularReduction) {
  // Exercise the NMAX chunked reduction path with > 5552 bytes.
  Bytes data(100000, 0xFF);
  Adler32 a;
  a.update(data);
  // Compute the reference with explicit 64-bit arithmetic.
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 0;
  for (std::uint8_t b : data) {
    s1 = (s1 + b) % 65521;
    s2 = (s2 + s1) % 65521;
  }
  EXPECT_EQ(a.value(), (s2 << 16 | s1));
}

TEST(Adler32, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 10000; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  Adler32 inc;
  inc.update(BytesView(data).subspan(0, 3000));
  inc.update(BytesView(data).subspan(3000));
  EXPECT_EQ(inc.value(), adler32(data));
}

}  // namespace
}  // namespace ads
