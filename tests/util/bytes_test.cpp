#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u24(0xABCDEF);
  w.u32(0xDEADBEEF);
  const Bytes expected = {0xAB, 0x12, 0x34, 0xAB, 0xCD, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteWriter, WritesU64) {
  ByteWriter w;
  w.u64(0x0102030405060708ull);
  const Bytes expected = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteWriter, SignedI32UsesTwosComplement) {
  // The draft's MouseWheelMoved distance: "negative values are transmitted
  // using 2's complement method."
  ByteWriter w;
  w.i32(-120);
  const Bytes expected = {0xFF, 0xFF, 0xFF, 0x88};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteWriter, PatchU32OverwritesInPlace) {
  ByteWriter w;
  w.u32(0);
  w.u8(0x55);
  w.patch_u32(0, 0xCAFEBABE);
  const Bytes expected = {0xCA, 0xFE, 0xBA, 0xBE, 0x55};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteWriter, AppendsRawBytesAndStrings) {
  ByteWriter w;
  const Bytes chunk = {1, 2, 3};
  w.bytes(chunk);
  w.str("hi");
  const Bytes expected = {1, 2, 3, 'h', 'i'};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteReader, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(7);
  w.u16(0xBEEF);
  w.u24(0x123456);
  w.u32(0xCAFEBABE);
  w.u64(0x1122334455667788ull);
  w.i32(-42);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u24().value(), 0x123456u);
  EXPECT_EQ(r.u32().value(), 0xCAFEBABEu);
  EXPECT_EQ(r.u64().value(), 0x1122334455667788ull);
  EXPECT_EQ(r.i32().value(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, TruncationIsReportedNotRead) {
  const Bytes data = {0x01, 0x02, 0x03};
  ByteReader r(data);
  EXPECT_TRUE(r.u16().ok());
  auto v = r.u16();  // only one byte left
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error(), ParseError::kTruncated);
  // A failed read must not consume the remaining byte.
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, BytesViewAndRest) {
  const Bytes data = {1, 2, 3, 4, 5};
  ByteReader r(data);
  auto head = r.bytes(2);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ((*head)[0], 1);
  auto tail = r.rest();
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[2], 5);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, SkipPastEndFails) {
  const Bytes data = {1, 2};
  ByteReader r(data);
  EXPECT_FALSE(r.skip(3).ok());
  EXPECT_TRUE(r.skip(2).ok());
  EXPECT_TRUE(r.at_end());
}

TEST(HexDump, FormatsBytes) {
  const Bytes data = {0xDE, 0xAD, 0x01};
  EXPECT_EQ(hex_dump(data), "de ad 01");
  EXPECT_EQ(hex_dump({}), "");
}

}  // namespace
}  // namespace ads
