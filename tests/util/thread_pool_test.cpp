#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ads {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count](std::size_t) { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerIndicesAreInRange) {
  ThreadPool pool(3);
  std::atomic<bool> out_of_range{false};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&](std::size_t worker) {
      if (worker >= 3) out_of_range = true;
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPool, EachResultSlotWrittenExactlyOnce) {
  // The ParallelEncoder pattern: N tasks, each owning one slot of a
  // preallocated vector; wait_idle() publishes the writes.
  ThreadPool pool(4);
  std::vector<int> results(200, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.submit([&results, i](std::size_t) { results[i] = static_cast<int>(i) + 1; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&](std::size_t) { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&](std::size_t) { count.fetch_add(1); });
    // No wait_idle: the destructor must still run every submitted task.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroRequestedThreadsStillGetsOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.submit([&](std::size_t) { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace ads
