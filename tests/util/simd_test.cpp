// Differential tests for the SIMD kernel layer: every dispatched kernel must
// be bit-identical to its scalar reference across randomized inputs, all
// buffer alignments (0..15 byte offsets) and all tail lengths (0..63 bytes
// past a vector-width multiple). The suite runs in both ADS_SIMD=ON and OFF
// builds; in the OFF build dispatch degenerates to scalar and the tests
// still pin the plumbing.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "util/prng.hpp"

namespace ads {
namespace {

// Deterministic byte soup with an oversized slack region so tests can slide
// the start offset for alignment coverage.
std::vector<std::uint8_t> random_bytes(Prng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.range(0, 255));
  return out;
}

TEST(SimdDispatch, LevelIsStableAndNamed) {
  const simd::Level l = simd::active_level();
  EXPECT_EQ(l, simd::active_level());
  EXPECT_FALSE(simd::level_name(l).empty());
  if (!simd::compiled_with_simd()) {
    EXPECT_EQ(l, simd::Level::kScalar);
  }
}

TEST(SimdAdler32, MatchesScalarAcrossLengthsAndAlignments) {
  Prng rng(0xAD1E);
  const auto buf = random_bytes(rng, 3 * 5552 + 256);
  for (std::size_t align = 0; align < 16; align += 3) {
    for (std::size_t tail = 0; tail < 64; ++tail) {
      for (const std::size_t base : {std::size_t{0}, std::size_t{32},
                                     std::size_t{5552}, std::size_t{2 * 5552}}) {
        const std::size_t n = base + tail;
        ASSERT_LE(align + n, buf.size());
        std::uint32_t s1a = 1, s2a = 0, s1b = 1, s2b = 0;
        simd::adler32_absorb(s1a, s2a, buf.data() + align, n);
        simd::adler32_absorb_scalar(s1b, s2b, buf.data() + align, n);
        ASSERT_EQ(s1a, s1b) << "align=" << align << " n=" << n;
        ASSERT_EQ(s2a, s2b) << "align=" << align << " n=" << n;
      }
    }
  }
}

TEST(SimdAdler32, IncrementalSplitsMatchOneShot) {
  Prng rng(0xAD2E);
  const auto buf = random_bytes(rng, 40000);
  std::uint32_t s1 = 1, s2 = 0;
  std::size_t pos = 0;
  while (pos < buf.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 9000)),
                              buf.size() - pos);
    simd::adler32_absorb(s1, s2, buf.data() + pos, chunk);
    pos += chunk;
  }
  std::uint32_t r1 = 1, r2 = 0;
  simd::adler32_absorb_scalar(r1, r2, buf.data(), buf.size());
  EXPECT_EQ(s1, r1);
  EXPECT_EQ(s2, r2);
}

TEST(SimdCrc32, MatchesScalarAcrossLengthsAndAlignments) {
  Prng rng(0xC3C3);
  const auto buf = random_bytes(rng, 4096 + 128);
  for (std::size_t align = 0; align < 16; ++align) {
    for (std::size_t tail = 0; tail < 64; ++tail) {
      for (const std::size_t base :
           {std::size_t{0}, std::size_t{64}, std::size_t{1024}, std::size_t{3000}}) {
        const std::size_t n = base + tail;
        const std::uint32_t init = static_cast<std::uint32_t>(rng.range(0, 1 << 30));
        const std::uint32_t a = simd::crc32_absorb(init, buf.data() + align, n);
        const std::uint32_t b = simd::crc32_absorb_scalar(init, buf.data() + align, n);
        ASSERT_EQ(a, b) << "align=" << align << " n=" << n;
      }
    }
  }
}

TEST(SimdFnv4, MatchesScalarAcrossWidthsAndPhases) {
  Prng rng(0xF4F4);
  const auto buf = random_bytes(rng, 4 * 1024);
  for (std::size_t pixels = 0; pixels < 70; ++pixels) {
    for (const std::size_t offset_px : {std::size_t{0}, std::size_t{1},
                                        std::size_t{2}, std::size_t{3},
                                        std::size_t{5}}) {
      ASSERT_LE((offset_px + pixels) * 4, buf.size());
      std::uint64_t la[4] = {1, 2, 3, 4};
      std::uint64_t lb[4] = {1, 2, 3, 4};
      simd::fnv4_absorb(la, buf.data() + offset_px * 4, pixels);
      simd::fnv4_absorb_scalar(lb, buf.data() + offset_px * 4, pixels);
      for (int j = 0; j < 4; ++j)
        ASSERT_EQ(la[j], lb[j]) << "pixels=" << pixels << " lane=" << j;
    }
  }
}

TEST(SimdPngFilters, MatchesScalarAllTypesWidthsAndPriors) {
  Prng rng(0x9A96);
  const auto raster = random_bytes(rng, 2 * 4096);
  for (const std::size_t bpp : {std::size_t{3}, std::size_t{4}}) {
    for (int type = 0; type < 5; ++type) {
      for (std::size_t tail = 0; tail < 64; ++tail) {
        for (const std::size_t base : {std::size_t{0}, std::size_t{96},
                                       std::size_t{1024}}) {
          const std::size_t n = base + tail;
          const std::uint8_t* row = raster.data() + 7;  // odd alignment
          const std::uint8_t* prior = raster.data() + 4096 + 3;
          for (const bool with_prior : {false, true}) {
            std::vector<std::uint8_t> got(n + 1, 0xEE);
            std::vector<std::uint8_t> want(n + 1, 0xEE);
            simd::png_filter_row(type, row, with_prior ? prior : nullptr, n, bpp,
                                 got.data());
            simd::png_filter_row_scalar(type, row, with_prior ? prior : nullptr, n,
                                        bpp, want.data());
            ASSERT_EQ(got, want) << "type=" << type << " n=" << n << " bpp=" << bpp
                                 << " prior=" << with_prior;
          }
        }
      }
    }
  }
}

TEST(SimdPngAbsSum, MatchesScalarIncludingMinus128) {
  Prng rng(0xAB50);
  auto buf = random_bytes(rng, 2048);
  // Salt with the abs(-128) edge case.
  for (std::size_t i = 0; i < buf.size(); i += 17) buf[i] = 0x80;
  for (std::size_t tail = 0; tail < 64; ++tail) {
    for (const std::size_t base : {std::size_t{0}, std::size_t{512}}) {
      for (std::size_t align = 0; align < 8; ++align) {
        const std::size_t n = base + tail;
        ASSERT_EQ(simd::png_abs_sum(buf.data() + align, n),
                  simd::png_abs_sum_scalar(buf.data() + align, n));
      }
    }
  }
}

TEST(SimdDct, ForwardTransformBitIdentical) {
  Prng rng(0xDC7);
  // A cos basis shaped like the codec's (values in [-0.5, 0.5]).
  double basis[64];
  double basis_t[64];
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      basis[u * 8 + x] =
          0.5 * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0);
      basis_t[x * 8 + u] = basis[u * 8 + x];
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    double in[64];
    for (auto& v : in) v = static_cast<double>(rng.range(-12800, 12700)) / 100.0;
    double a[64];
    double b[64];
    simd::fdct8x8(in, a, basis, basis_t);
    simd::fdct8x8_scalar(in, b, basis, basis_t);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
          << "coef " << i << ": " << a[i] << " vs " << b[i];
    }
  }
}

TEST(SimdDct, QuantiseBitIdentical) {
  Prng rng(0xDC8);
  int zigzag[64];
  for (int i = 0; i < 64; ++i) zigzag[i] = i;
  // A couple of shuffles of the index map, including the identity.
  for (int shuffle = 0; shuffle < 3; ++shuffle) {
    if (shuffle > 0) {
      for (int i = 63; i > 0; --i)
        std::swap(zigzag[i], zigzag[rng.range(0, i)]);
    }
    for (int trial = 0; trial < 100; ++trial) {
      double freq[64];
      int q[64];
      for (auto& v : freq)
        v = static_cast<double>(rng.range(-4'000'000, 4'000'000)) / 7.0;
      for (auto& v : q) v = rng.range(1, 255);
      int a[64];
      int b[64];
      simd::dct_quantise(freq, q, zigzag, a);
      simd::dct_quantise_scalar(freq, q, zigzag, b);
      for (int i = 0; i < 64; ++i) ASSERT_EQ(a[i], b[i]) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace ads
