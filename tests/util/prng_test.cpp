#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, BelowRespectsBound) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Prng, RangeInclusive) {
  Prng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean should be near 0.5 for a healthy generator.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, ChanceExtremes) {
  Prng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Prng, ChanceApproximatesProbability) {
  Prng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace ads
