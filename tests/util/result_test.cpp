#include "util/result.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ads {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = ParseError::kTruncated;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), ParseError::kTruncated);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValueTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(Status, DefaultIsOk) {
  ParseStatus s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  ParseStatus s = ParseError::kBadChecksum;
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error(), ParseError::kBadChecksum);
}

TEST(ParseErrorNames, AllDistinct) {
  EXPECT_STREQ(to_string(ParseError::kTruncated), "truncated");
  EXPECT_STREQ(to_string(ParseError::kBadMagic), "bad-magic");
  EXPECT_STREQ(to_string(ParseError::kBadValue), "bad-value");
  EXPECT_STREQ(to_string(ParseError::kBadChecksum), "bad-checksum");
  EXPECT_STREQ(to_string(ParseError::kUnsupported), "unsupported");
  EXPECT_STREQ(to_string(ParseError::kOverflow), "overflow");
  EXPECT_STREQ(to_string(ParseError::kBadState), "bad-state");
}

}  // namespace
}  // namespace ads
