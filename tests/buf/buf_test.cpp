// BufPool / BufRef lifecycle: refcount sharing, free-list recycling, and the
// pool-dies-first detach path. The whole suite also runs under ASan in CI,
// which is the real assertion for the manual new/delete in the pool.
#include "buf/buf.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace ads::buf {
namespace {

TEST(BufPool, AcquireFillRelease) {
  BufPool pool;
  {
    BufRef ref = pool.acquire(64);
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref.refcount(), 1u);
    ref.bytes().assign({1, 2, 3, 4});
    EXPECT_EQ(ref.view().size(), 4u);
    EXPECT_EQ(ref.slice(1, 2)[0], 2);
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().allocations, 1u);
  EXPECT_EQ(pool.stats().recycles, 1u);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(BufPool, RecycleReusesAllocation) {
  BufPool pool;
  const std::uint8_t* data0 = nullptr;
  {
    BufRef ref = pool.acquire(128);
    ref.bytes().resize(100, 0xAB);
    data0 = ref.view().data();
  }
  {
    BufRef ref = pool.acquire(64);
    EXPECT_EQ(ref.view().size(), 0u) << "recycled buffer must come back cleared";
    ref.bytes().resize(50);
    EXPECT_EQ(ref.view().data(), data0) << "free-list hit should reuse storage";
  }
  EXPECT_EQ(pool.stats().acquires, 2u);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().allocations, 1u);
}

TEST(BufPool, CopiesShareAndLastReleaseRecycles) {
  BufPool pool;
  BufRef a = pool.acquire(16);
  a.bytes().assign({9, 9, 9});
  BufRef b = a;
  BufRef c;
  c = b;
  EXPECT_EQ(a.refcount(), 3u);
  EXPECT_EQ(c.view().data(), a.view().data());
  a.release();
  EXPECT_FALSE(a);
  EXPECT_EQ(b.refcount(), 2u);
  EXPECT_EQ(pool.free_count(), 0u) << "buffer still referenced";
  b.release();
  c.release();
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufPool, MoveTransfersWithoutRefcountChurn) {
  BufPool pool;
  BufRef a = pool.acquire(8);
  BufRef b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move state is defined
  EXPECT_EQ(b.refcount(), 1u);
  BufRef c;
  c = std::move(b);
  EXPECT_EQ(c.refcount(), 1u);
  // Self-move-safety is not required; overwriting an engaged ref is.
  c = pool.acquire(8);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(BufPool, FreeListCapDeletesOverflow) {
  BufPool pool(/*max_free=*/2);
  std::vector<BufRef> refs;
  for (int i = 0; i < 5; ++i) refs.push_back(pool.acquire(32));
  refs.clear();
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.stats().recycles, 2u);
  EXPECT_EQ(pool.stats().frees, 3u);
}

TEST(BufPool, PoolDestroyedFirstDetachesBuffers) {
  BufRef survivor;
  {
    BufPool pool;
    survivor = pool.acquire(32);
    survivor.bytes().assign({7, 7});
    BufRef recycled = pool.acquire(32);  // released while pool still alive
    EXPECT_TRUE(static_cast<bool>(recycled));
  }
  // The pool is gone; the surviving reference still reads its bytes and the
  // final release self-deletes (ASan validates no leak / double free).
  EXPECT_EQ(survivor.view().size(), 2u);
  EXPECT_EQ(survivor.view()[0], 7);
  BufRef copy = survivor;
  survivor.release();
  EXPECT_EQ(copy.refcount(), 1u);
  copy.release();
}

TEST(BufPool, StatsCountEveryPath) {
  BufPool pool(/*max_free=*/1);
  BufRef a = pool.acquire(8);
  BufRef b = pool.acquire(8);
  a.release();  // recycles (list now full)
  b.release();  // frees
  BufRef c = pool.acquire(8);  // pool hit
  const BufPoolStats& s = pool.stats();
  EXPECT_EQ(s.acquires, 3u);
  EXPECT_EQ(s.allocations, 2u);
  EXPECT_EQ(s.pool_hits, 1u);
  EXPECT_EQ(s.recycles, 1u);
  EXPECT_EQ(s.frees, 1u);
  EXPECT_EQ(s.outstanding, 1u);
}

}  // namespace
}  // namespace ads::buf
