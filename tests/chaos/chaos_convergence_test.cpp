// The resilience invariant, end to end: script fault episodes onto live
// session links, and after the last episode clears every surviving
// participant's framebuffer must be bit-identical to the AH's within a
// bounded number of ticks. A seeded matrix keeps the whole thing
// deterministic; liveness eviction is asserted through the telemetry
// snapshot.
#include <gtest/gtest.h>

#include "chaos/fault_schedule.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "telemetry/export.hpp"

namespace ads {
namespace {

using chaos::FaultSchedule;
using chaos::RandomScheduleOptions;

AppHostOptions chaos_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

UdpLinkConfig fast_udp() {
  UdpLinkConfig link;
  link.down.delay_us = 2000;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 2000;
  return link;
}

ParticipantOptions resilient_participant() {
  ParticipantOptions opts;
  opts.starvation_timeout_us = sim_ms(800);  // recover quickly after faults
  return opts;
}

/// Pixel-exact convergence check against the AH's last captured frame.
void expect_converged(SharingSession& session,
                      const SharingSession::Connection& conn,
                      const char* what) {
  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0) << what;
}

TEST(ChaosConvergence, UdpRandomFaultMatrixReconvergesAcrossSeeds) {
  // ISSUE acceptance: deterministic for >= 5 seeds. One faulted link plus
  // one clean witness per run; the witness must never regress.
  for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    SharingSession session(chaos_host());
    const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
    session.host().capturer().attach(
        w, std::make_unique<TerminalApp>(160, 120, 5));

    auto& faulted = session.add_udp_participant(resilient_participant(), fast_udp());
    auto& witness = session.add_udp_participant(resilient_participant(), fast_udp());
    faulted.participant->join();
    witness.participant->join();

    FaultSchedule faults(session.loop(), seed, &session.telemetry());
    faults.script_random(*faulted.down_udp, {});

    session.host().start();
    // Run through the whole schedule, then give the recovery ladder
    // (NACK retries -> PLI + backoff) a bounded window: 25 ticks.
    const SimTime deadline = faults.all_clear_at() + 25 * sim_ms(100);
    session.loop().run_until(deadline);
    session.host().stop();
    session.run_for(sim_sec(1));  // drain in-flight deliveries

    ASSERT_GT(faults.episodes_started(), 0u) << "seed " << seed;
    EXPECT_EQ(faults.episodes_cleared(), faults.episodes().size())
        << "seed " << seed;
    expect_converged(session, faulted, "faulted link");
    expect_converged(session, witness, "witness link");
  }
}

TEST(ChaosConvergence, SameSeedReplaysBitIdenticalTelemetry) {
  // Whole-system determinism: two identical runs (same schedule seed, same
  // links) produce byte-identical telemetry JSON — every counter in every
  // layer, including the jittered starvation/PLI machinery.
  const auto run = [] {
    SharingSession session(chaos_host());
    const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
    session.host().capturer().attach(
        w, std::make_unique<TerminalApp>(128, 96, 5));
    auto& conn = session.add_udp_participant(resilient_participant(), fast_udp());
    conn.participant->join();
    FaultSchedule faults(session.loop(), 777, &session.telemetry());
    faults.script_random(*conn.down_udp, {});
    session.host().start();
    session.loop().run_until(faults.all_clear_at() + sim_sec(2));
    session.host().stop();
    session.run_for(sim_sec(1));
    return telemetry::to_json(session.telemetry().snapshot());
  };
  EXPECT_EQ(run(), run());
}

TEST(ChaosConvergence, BlackoutStarvationRecoversViaWatchdogPli) {
  // Total blackout long enough to exhaust the NACK ladder: the participant
  // must escalate (bounded NACKs -> PLI with backoff) and still converge.
  SharingSession session(chaos_host());
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  ParticipantOptions popts = resilient_participant();
  auto& conn = session.add_udp_participant(popts, fast_udp());
  conn.participant->join();

  FaultSchedule faults(session.loop(), 5, &session.telemetry());
  faults.blackout(*conn.down_udp, sim_ms(600), sim_sec(2));

  session.host().start();
  session.loop().run_until(faults.all_clear_at() + sim_sec(3));
  session.host().stop();
  session.run_for(sim_sec(1));

  const auto& st = conn.participant->stats();
  EXPECT_GT(st.starvation_plis, 0u);  // the watchdog fired during the hole
  expect_converged(session, conn, "post-blackout");
}

TEST(ChaosConvergence, TcpStallAndCollapseReconverge) {
  SharingSession session(chaos_host());
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  TcpLinkConfig link;
  link.down.bandwidth_bps = 20'000'000;
  link.down.send_buffer_bytes = 256 * 1024;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    auto& conn = session.add_tcp_participant(resilient_participant(), link);
    FaultSchedule faults(session.loop(), seed, &session.telemetry());
    RandomScheduleOptions ro;
    ro.start_us = session.loop().now() + sim_ms(500);
    ro.horizon_us = session.loop().now() + sim_sec(4);
    faults.script_random(*conn.down_tcp, ro);

    session.host().start();
    session.loop().run_until(faults.all_clear_at() + sim_ms(2500));
    session.host().stop();
    session.run_for(sim_sec(1));
    expect_converged(session, conn, "TCP faulted link");
    session.host().start();  // next seed reuses the session
  }
}

TEST(ChaosConvergence, SilentParticipantIsEvictedAndStateReclaimed) {
  // A participant whose uplink dies completely goes stale and is then
  // evicted; the telemetry snapshot must show the transition, the eviction,
  // and the reclaimed AH-side state. The survivor keeps converging.
  AppHostOptions host_opts = chaos_host();
  host_opts.stale_after_us = sim_sec(2);
  host_opts.evict_after_us = sim_sec(4);
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(128, 96, 3));

  auto& doomed = session.add_udp_participant(resilient_participant(), fast_udp());
  auto& survivor = session.add_udp_participant(resilient_participant(), fast_udp());
  doomed.participant->join();
  survivor.participant->join();

  // Kill the doomed participant's uplink for the rest of the run: its RRs,
  // NACKs and PLIs all vanish, so the AH hears nothing from it.
  FaultSchedule faults(session.loop(), 13, &session.telemetry());
  faults.blackout(*doomed.up_udp, sim_ms(200), sim_sec(30));

  session.host().start();
  session.run_for(sim_ms(2600));
  {
    auto snap = session.telemetry().snapshot();
    EXPECT_EQ(snap.gauge("liveness.stale"), 1);
    EXPECT_EQ(snap.counter("liveness.evictions"), 0u);
    EXPECT_EQ(snap.gauge("ah.participants"), 2);
  }
  session.run_for(sim_ms(2000));
  {
    auto snap = session.telemetry().snapshot();
    EXPECT_EQ(snap.counter("liveness.stale_transitions"), 1u);
    EXPECT_EQ(snap.counter("liveness.evictions"), 1u);
    EXPECT_EQ(snap.gauge("liveness.stale"), 0);     // the stale peer is gone
    EXPECT_EQ(snap.gauge("ah.participants"), 1);    // state reclaimed
    EXPECT_EQ(snap.counter("recovery.evicted_connections"), 1u);
  }
  EXPECT_EQ(session.host().participant_count(), 1u);
  // The doomed connection's channels were torn down by the session hook.
  EXPECT_EQ(doomed.down_udp, nullptr);
  EXPECT_EQ(doomed.up_udp, nullptr);

  session.host().stop();
  session.run_for(sim_sec(1));
  expect_converged(session, survivor, "survivor after eviction");
}

}  // namespace
}  // namespace ads
