// The resilience invariant, end to end: script fault episodes onto live
// session links, and after the last episode clears every surviving
// participant's framebuffer must be bit-identical to the AH's within a
// bounded number of ticks. A seeded matrix keeps the whole thing
// deterministic; liveness eviction is asserted through the telemetry
// snapshot.
#include <gtest/gtest.h>

#include "chaos/fault_schedule.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "telemetry/export.hpp"

namespace ads {
namespace {

using chaos::FaultSchedule;
using chaos::RandomScheduleOptions;

AppHostOptions chaos_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

UdpLinkConfig fast_udp() {
  UdpLinkConfig link;
  link.down.delay_us = 2000;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 2000;
  return link;
}

ParticipantOptions resilient_participant() {
  ParticipantOptions opts;
  opts.starvation_timeout_us = sim_ms(800);  // recover quickly after faults
  return opts;
}

/// Pixel-exact convergence check against the AH's last captured frame.
void expect_converged(SharingSession& session,
                      const SharingSession::Connection& conn,
                      const char* what) {
  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_EQ(diff_pixel_count(truth, replica), 0) << what;
}

TEST(ChaosConvergence, UdpRandomFaultMatrixReconvergesAcrossSeeds) {
  // ISSUE acceptance: deterministic for >= 5 seeds. One faulted link plus
  // one clean witness per run; the witness must never regress.
  for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    SharingSession session(chaos_host());
    const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
    session.host().capturer().attach(
        w, std::make_unique<TerminalApp>(160, 120, 5));

    auto& faulted = session.add_udp_participant(resilient_participant(), fast_udp());
    auto& witness = session.add_udp_participant(resilient_participant(), fast_udp());
    faulted.participant->join();
    witness.participant->join();

    FaultSchedule faults(session.loop(), seed, &session.telemetry());
    faults.script_random(*faulted.down_udp, {});

    session.host().start();
    // Run through the whole schedule, then give the recovery ladder
    // (NACK retries -> PLI + backoff) a bounded window: 25 ticks.
    const SimTime deadline = faults.all_clear_at() + 25 * sim_ms(100);
    session.loop().run_until(deadline);
    session.host().stop();
    session.run_for(sim_sec(1));  // drain in-flight deliveries

    ASSERT_GT(faults.episodes_started(), 0u) << "seed " << seed;
    EXPECT_EQ(faults.episodes_cleared(), faults.episodes().size())
        << "seed " << seed;
    expect_converged(session, faulted, "faulted link");
    expect_converged(session, witness, "witness link");
  }
}

TEST(ChaosConvergence, SameSeedReplaysBitIdenticalTelemetry) {
  // Whole-system determinism: two identical runs (same schedule seed, same
  // links) produce byte-identical telemetry JSON — every counter in every
  // layer, including the jittered starvation/PLI machinery.
  const auto run = [] {
    SharingSession session(chaos_host());
    const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
    session.host().capturer().attach(
        w, std::make_unique<TerminalApp>(128, 96, 5));
    auto& conn = session.add_udp_participant(resilient_participant(), fast_udp());
    conn.participant->join();
    FaultSchedule faults(session.loop(), 777, &session.telemetry());
    faults.script_random(*conn.down_udp, {});
    session.host().start();
    session.loop().run_until(faults.all_clear_at() + sim_sec(2));
    session.host().stop();
    session.run_for(sim_sec(1));
    return telemetry::to_json(session.telemetry().snapshot());
  };
  EXPECT_EQ(run(), run());
}

TEST(ChaosConvergence, BlackoutStarvationRecoversViaWatchdogPli) {
  // Total blackout long enough to exhaust the NACK ladder: the participant
  // must escalate (bounded NACKs -> PLI with backoff) and still converge.
  SharingSession session(chaos_host());
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  ParticipantOptions popts = resilient_participant();
  auto& conn = session.add_udp_participant(popts, fast_udp());
  conn.participant->join();

  FaultSchedule faults(session.loop(), 5, &session.telemetry());
  faults.blackout(*conn.down_udp, sim_ms(600), sim_sec(2));

  session.host().start();
  session.loop().run_until(faults.all_clear_at() + sim_sec(3));
  session.host().stop();
  session.run_for(sim_sec(1));

  const auto& st = conn.participant->stats();
  EXPECT_GT(st.starvation_plis, 0u);  // the watchdog fired during the hole
  expect_converged(session, conn, "post-blackout");
}

TEST(ChaosConvergence, TcpStallAndCollapseReconverge) {
  SharingSession session(chaos_host());
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  TcpLinkConfig link;
  link.down.bandwidth_bps = 20'000'000;
  link.down.send_buffer_bytes = 256 * 1024;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    auto& conn = session.add_tcp_participant(resilient_participant(), link);
    FaultSchedule faults(session.loop(), seed, &session.telemetry());
    RandomScheduleOptions ro;
    ro.start_us = session.loop().now() + sim_ms(500);
    ro.horizon_us = session.loop().now() + sim_sec(4);
    faults.script_random(*conn.down_tcp, ro);

    session.host().start();
    session.loop().run_until(faults.all_clear_at() + sim_ms(2500));
    session.host().stop();
    session.run_for(sim_sec(1));
    expect_converged(session, conn, "TCP faulted link");
    session.host().start();  // next seed reuses the session
  }
}

AppHostOptions adaptive_host() {
  AppHostOptions opts = chaos_host();
  opts.adaptation.enabled = true;
  opts.adaptation.min_rate_bps = 200'000;
  opts.adaptation.max_rate_bps = 50'000'000;
  opts.adaptation.initial_rate_bps = 20'000'000;
  // Probe back up fast enough that post-restore budgets clear the VideoApp
  // demand within a bounded test window.
  opts.adaptation.additive_increase_bps = 1'000'000;
  return opts;
}

TEST(ChaosConvergence, AdaptiveBandwidthCollapseMatrixReconverges) {
  // ISSUE 4 acceptance: the closed-loop controller must ride through a
  // bandwidth collapse — decrease into the hole, probe back out after the
  // restore — and still reconverge pixel-exact, across 5 seeds. The codec
  // stays PNG (lossless) so convergence is bit-exact; the quality ladder
  // has its own DCT test below.
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    SharingSession session(adaptive_host());
    const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
    // Full-frame damage every tick: demand far exceeds the collapsed link,
    // so the loop must actually throttle (light content would ride through
    // the collapse untouched and prove nothing).
    session.host().capturer().attach(
        w, std::make_unique<VideoApp>(160, 120, 5));

    auto& conn = session.add_udp_participant(resilient_participant(), fast_udp());
    conn.participant->join();

    FaultSchedule faults(session.loop(), seed, &session.telemetry());
    faults.bandwidth_collapse(*conn.down_udp, sim_sec(1), sim_ms(2500),
                              /*collapsed_bps=*/300'000,
                              /*restore_bps=*/50'000'000);

    session.host().start();
    session.loop().run_until(faults.all_clear_at() + sim_sec(8));
    session.host().stop();
    session.run_for(sim_sec(1));

    const auto snap = session.telemetry().snapshot();
    EXPECT_GT(snap.counter("rate.decreases"), 0u) << "seed " << seed;
    EXPECT_GT(snap.counter("rate.increases"), 0u) << "seed " << seed;
    EXPECT_GE(snap.gauge("rate.p1.budget_bps"), 200'000) << "seed " << seed;
    expect_converged(session, conn, "adaptive collapse link");
  }
}

TEST(ChaosConvergence, AdaptiveGilbertElliottEpisodeRecovers) {
  // Burst loss (not a rate mismatch): the loop must cut on the lossy RRs,
  // then recover full budget and converge once the episode clears.
  // Retransmissions are disabled so interval loss reaches the RR unrepaired
  // (a successful NACK repair refills the received count within the same RR
  // interval and masks the signal); recovery then rides the per-sequence
  // NACK-escalation → PLI ladder.
  AppHostOptions host_opts = adaptive_host();
  host_opts.retransmissions = false;
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<TerminalApp>(128, 96, 5));

  auto& conn = session.add_udp_participant(resilient_participant(), fast_udp());
  conn.participant->join();

  FaultSchedule faults(session.loop(), 99, &session.telemetry());
  faults.burst_loss(*conn.down_udp, sim_sec(1), sim_sec(2));

  session.host().start();
  session.loop().run_until(faults.all_clear_at() + sim_sec(6));
  session.host().stop();
  session.run_for(sim_sec(1));

  const auto snap = session.telemetry().snapshot();
  EXPECT_GT(snap.counter("rate.decreases"), 0u);
  expect_converged(session, conn, "adaptive burst-loss link");
}

TEST(ChaosConvergence, AdaptiveSameSeedReplaysBitIdenticalTelemetry) {
  // Determinism of the whole closed loop: every rate.* counter and gauge —
  // the full adaptation trace — must replay byte-identically for the same
  // seed. Run the 5-seed matrix, two runs each.
  const auto run = [](std::uint64_t seed) {
    SharingSession session(adaptive_host());
    const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
    session.host().capturer().attach(
        w, std::make_unique<TerminalApp>(128, 96, 5));
    auto& conn = session.add_udp_participant(resilient_participant(), fast_udp());
    conn.participant->join();
    FaultSchedule faults(session.loop(), seed, &session.telemetry());
    faults.bandwidth_collapse(*conn.down_udp, sim_sec(1), sim_sec(2),
                              300'000, 50'000'000);
    faults.script_random(*conn.down_udp,
                         {.start_us = sim_sec(4), .horizon_us = sim_sec(7)});
    session.host().start();
    session.loop().run_until(faults.all_clear_at() + sim_sec(2));
    session.host().stop();
    session.run_for(sim_sec(1));
    return telemetry::to_json(session.telemetry().snapshot());
  };
  for (std::uint64_t seed : {61u, 62u, 63u, 64u, 65u}) {
    const std::string first = run(seed);
    EXPECT_EQ(first, run(seed)) << "seed " << seed;
    EXPECT_NE(first.find("rate.decreases"), std::string::npos);
  }
}

TEST(ChaosConvergence, AdaptiveDctEngagesQualityLadderUnderCollapse) {
  // With a lossy codec the controller also walks the quality/fps ladder:
  // mid-collapse the operating point must have degraded, and after the
  // restore it must climb back to the top rung. Convergence is asserted by
  // PSNR (DCT is lossy; pixel-exact is the PNG tests' job).
  AppHostOptions opts = adaptive_host();
  opts.codec = ContentPt::kDct;
  // Loss must reach the RRs while the collapse is still on: repairs are off
  // (NACK retransmissions landing inside an RR interval refill the received
  // count and mask queue-drop loss), and the down link gets a shallow
  // interface queue — the default 256 KiB buffer holds ~8 s of data at the
  // collapsed rate, so tail-drop sequence gaps would not drain into view
  // until after the restore (bufferbloat hiding the loss signal).
  opts.retransmissions = false;
  SharingSession session(opts);
  const WindowId w = session.host().wm().create({0, 0, 160, 120}, 1);
  session.host().capturer().attach(w, std::make_unique<VideoApp>(160, 120, 3));

  UdpLinkConfig link = fast_udp();
  link.down.queue_bytes = 32 * 1024;  // ~1 s of queue at the collapsed rate
  auto& conn = session.add_udp_participant(resilient_participant(), link);
  conn.participant->join();

  FaultSchedule faults(session.loop(), 7, &session.telemetry());
  faults.bandwidth_collapse(*conn.down_udp, sim_sec(1), sim_sec(5),
                            250'000, 50'000'000);

  session.host().start();
  session.run_for(sim_ms(5500));  // mid-collapse, past several lossy RRs
  {
    const auto snap = session.telemetry().snapshot();
    EXPECT_GT(snap.counter("rate.decreases"), 0u);
    const auto* op = session.host().participant_operating_point(1);
    ASSERT_NE(op, nullptr);
    // The operating point must have left the top of the schedule: a worse
    // quality rung, and — once the mid rungs are exhausted — a slower
    // frame cadence.
    EXPECT_GT(op->quality_step, 0);
  }
  session.loop().run_until(faults.all_clear_at() + sim_sec(20));
  session.host().stop();
  session.run_for(sim_sec(1));
  {
    const auto snap = session.telemetry().snapshot();
    EXPECT_GT(snap.counter("rate.quality_changes"), 0u);
    const auto* op = session.host().participant_operating_point(1);
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->quality_step, 0);  // clean air: back at the top rung
    EXPECT_EQ(op->fps_divisor, 1);
  }
  const Image& truth = session.host().capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  EXPECT_GT(psnr(truth, replica), 20.0);
}

TEST(ChaosConvergence, SilentParticipantIsEvictedAndStateReclaimed) {
  // A participant whose uplink dies completely goes stale and is then
  // evicted; the telemetry snapshot must show the transition, the eviction,
  // and the reclaimed AH-side state. The survivor keeps converging.
  AppHostOptions host_opts = chaos_host();
  host_opts.stale_after_us = sim_sec(2);
  host_opts.evict_after_us = sim_sec(4);
  SharingSession session(host_opts);
  const WindowId w = session.host().wm().create({0, 0, 128, 96}, 1);
  session.host().capturer().attach(w, std::make_unique<SlideshowApp>(128, 96, 3));

  auto& doomed = session.add_udp_participant(resilient_participant(), fast_udp());
  auto& survivor = session.add_udp_participant(resilient_participant(), fast_udp());
  doomed.participant->join();
  survivor.participant->join();

  // Kill the doomed participant's uplink for the rest of the run: its RRs,
  // NACKs and PLIs all vanish, so the AH hears nothing from it.
  FaultSchedule faults(session.loop(), 13, &session.telemetry());
  faults.blackout(*doomed.up_udp, sim_ms(200), sim_sec(30));

  session.host().start();
  session.run_for(sim_ms(2600));
  {
    auto snap = session.telemetry().snapshot();
    EXPECT_EQ(snap.gauge("liveness.stale"), 1);
    EXPECT_EQ(snap.counter("liveness.evictions"), 0u);
    EXPECT_EQ(snap.gauge("ah.participants"), 2);
  }
  session.run_for(sim_ms(2000));
  {
    auto snap = session.telemetry().snapshot();
    EXPECT_EQ(snap.counter("liveness.stale_transitions"), 1u);
    EXPECT_EQ(snap.counter("liveness.evictions"), 1u);
    EXPECT_EQ(snap.gauge("liveness.stale"), 0);     // the stale peer is gone
    EXPECT_EQ(snap.gauge("ah.participants"), 1);    // state reclaimed
    EXPECT_EQ(snap.counter("recovery.evicted_connections"), 1u);
  }
  EXPECT_EQ(session.host().participant_count(), 1u);
  // The doomed connection's channels were torn down by the session hook.
  EXPECT_EQ(doomed.down_udp, nullptr);
  EXPECT_EQ(doomed.up_udp, nullptr);

  session.host().stop();
  session.run_for(sim_sec(1));
  expect_converged(session, survivor, "survivor after eviction");
}

}  // namespace
}  // namespace ads
