// Relay self-healing chaos soak (run under TSan in CI): a depth-3 cascade
// with viewers at every level rides out a scripted kRelayStall wedge, then a
// kRelayCrash that kills the middle relay cold for two seconds. The orphaned
// depth-3 subtree must detect the silence, fail over to the grandparent and
// resync; the crashed node later cold-restarts and rejoins under the same
// parent with monotone telemetry. The whole sequence must be deterministic:
// for each of 5 schedule seeds, two identical runs produce byte-identical
// telemetry JSON — every relay.rN.* and failover.* counter included.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "capture/apps.hpp"
#include "chaos/fault_schedule.hpp"
#include "core/session.hpp"
#include "rtp/rtcp.hpp"
#include "telemetry/export.hpp"

namespace ads {
namespace {

using chaos::FaultSchedule;

struct SoakOutcome {
  std::string telemetry_json;
  std::uint64_t failovers = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t leaf_packets_at_restart = 0;
  std::uint64_t leaf_packets_final = 0;
  bool r3_under_r1 = false;
  bool r3_orphaned = false;
  std::size_t episodes_cleared = 0;
};

SoakOutcome run_soak(std::uint64_t seed) {
  AppHostOptions hopts;
  hopts.screen_width = 320;
  hopts.screen_height = 240;
  hopts.frame_interval_us = sim_ms(100);
  SharingSession session(hopts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

  relay::RelayOptions ropts;
  ropts.report_interval_us = sim_ms(200);
  ropts.nack_flush_us = sim_ms(5);
  ropts.nack_holdoff_us = sim_ms(300);
  ropts.upstream_timeout_us = sim_ms(800);
  ropts.probe_interval_us = sim_ms(200);
  ropts.probe_count = 2;
  ropts.seed = 0xBE1A ^ seed;
  auto& r1 = session.add_relay(ropts);
  auto& r2 = session.add_relay_child(r1, ropts);
  auto& r3 = session.add_relay_child(r2, ropts);

  // One viewer per level over mildly lossy last hops, so leg NACKs keep
  // every relay's cache busy throughout the faults.
  ParticipantOptions popts;
  popts.screen_width = 320;
  popts.screen_height = 240;
  UdpLinkConfig vlink;
  vlink.down.loss = 0.03;
  vlink.down.seed = 1000 + seed;
  std::vector<SharingSession::RelayViewer*> viewers;
  for (auto* rh : {&r1, &r2, &r3}) {
    viewers.push_back(&session.add_relay_viewer(*rh, popts, vlink));
  }
  SharingSession::RelayViewer* leaf = viewers.back();

  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());

  // The script: a 400ms wedge on r2 (shorter than r3's grace period — no
  // failover yet), then a cold 2s crash of r2 (r3 must re-home to r1), then
  // the restart (r2 rejoins under r1; r3 stays where it failed over to).
  FaultSchedule faults(session.loop(), seed, &session.telemetry());
  faults.relay_stall(sim_ms(1000), sim_ms(400),
                     [&r2](bool stalled) { r2.node->set_stalled(stalled); });
  faults.relay_crash(
      sim_ms(3000), sim_ms(2000), [&session, &r2] { session.crash_relay(r2); },
      [&session, &r2] { session.restart_relay(r2); });

  SoakOutcome out;
  host.start();
  session.loop().run_until(sim_ms(5000));  // restart instant
  out.leaf_packets_at_restart = leaf->participant->stats().rtp_packets;
  session.loop().run_until(sim_ms(8000));
  host.stop();
  session.run_for(sim_sec(1));  // drain repairs and reports in flight

  out.telemetry_json = telemetry::to_json(session.telemetry().snapshot());
  out.failovers = session.relay_failovers();
  out.crashes = session.relay_crashes();
  out.restarts = session.relay_restarts();
  out.leaf_packets_final = leaf->participant->stats().rtp_packets;
  out.r3_under_r1 = r3.parent == &r1;
  out.r3_orphaned = r3.node->orphaned();
  out.episodes_cleared = faults.episodes_cleared();

  // Invariants that must hold inside every run, any seed.
  EXPECT_GT(r3.node->stats().upstream_lost, 0u) << "seed " << seed;
  EXPECT_GT(r3.node->stats().adoptions, 0u) << "seed " << seed;
  EXPECT_GT(r2.node->stats().forwarded_packets,
            r2.retired.forwarded_packets)
      << "restarted node never forwarded, seed " << seed;
  for (const auto* v : viewers) {
    EXPECT_GT(v->participant->stats().rtp_packets, 0u) << "seed " << seed;
  }
  const auto snap = session.telemetry().snapshot();
  EXPECT_EQ(snap.counter("chaos.relay_crash_episodes"), 1u);
  EXPECT_EQ(snap.counter("chaos.relay_stall_episodes"), 1u);
  EXPECT_EQ(snap.gauge("relay.r3.failover.orphaned"), 0);
  EXPECT_EQ(snap.counter("recovery.relay_crashes"), 1u);
  EXPECT_EQ(snap.counter("recovery.relay_restarts"), 1u);
  return out;
}

TEST(RelayFailoverSoak, DeterministicSelfHealingAcrossFiveSeeds) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    const SoakOutcome a = run_soak(seed);
    const SoakOutcome b = run_soak(seed);

    // Bit-identical replay: the watchdog jitter, the failover instant and
    // every repair land on the same virtual-clock microsecond both times.
    EXPECT_EQ(a.telemetry_json, b.telemetry_json) << "seed " << seed;

    // The healing story itself.
    EXPECT_EQ(a.failovers, 1u) << "seed " << seed;
    EXPECT_EQ(a.crashes, 1u) << "seed " << seed;
    EXPECT_EQ(a.restarts, 1u) << "seed " << seed;
    EXPECT_TRUE(a.r3_under_r1) << "seed " << seed;
    EXPECT_FALSE(a.r3_orphaned) << "seed " << seed;
    // Both scripted episodes cleared (the crash had a restart).
    EXPECT_EQ(a.episodes_cleared, 2u) << "seed " << seed;
    // The subtree kept flowing after the restart.
    EXPECT_GT(a.leaf_packets_final, a.leaf_packets_at_restart)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ads
