// Relay-tree chaos soak: a 3-level cascade (AH → r1 → r2 → r3) with real
// viewers hanging off every level, seeded loss and bandwidth faults on the
// *interior* links, then a heal-and-settle phase. Run under TSan in CI.
//
// The assertions pin the tier's recovery story: interior loss surfaces as
// relay gap-NACKs served from the parent's cache (never re-encoded, and —
// when the parent holds the packet — never reaching the AH), leaf viewers
// keep receiving after the faults clear, and every relay's telemetry is
// visible in the session-wide registry under its own prefix.
#include <gtest/gtest.h>

#include "capture/apps.hpp"
#include "core/session.hpp"
#include "rtp/rtcp.hpp"

namespace ads {
namespace {

constexpr int kChaosTicks = 30;
constexpr int kSettleTicks = 20;

TEST(RelaySoak, ThreeLevelTreeRecoversFromInteriorFaults) {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  SharingSession session(opts);
  AppHost& host = session.host();

  const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

  // The cascade: r1 under the AH, r2 under r1, r3 under r2. Short report
  // intervals keep feedback flowing at soak timescales.
  relay::RelayOptions ropts;
  ropts.report_interval_us = sim_ms(200);
  ropts.nack_flush_us = sim_ms(5);
  ropts.nack_holdoff_us = sim_ms(300);
  auto& r1 = session.add_relay(ropts);
  auto& r2 = session.add_relay_child(r1, ropts);
  auto& r3 = session.add_relay_child(r2, ropts);

  // Two viewers per level; their last hops are mildly lossy throughout, so
  // leg NACKs exercise each relay's local cache the whole run.
  ParticipantOptions popts;
  popts.screen_width = 320;
  popts.screen_height = 240;
  UdpLinkConfig viewer_link;
  viewer_link.down.loss = 0.02;
  std::vector<SharingSession::RelayViewer*> viewers;
  for (auto* relay_handle : {&r1, &r2, &r3}) {
    for (int i = 0; i < 2; ++i) {
      viewers.push_back(
          &session.add_relay_viewer(*relay_handle, popts, viewer_link));
    }
  }

  // Late-join the tree: one leaf PLI refreshes every level at once.
  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());

  int tick = 0;
  auto run_ticks = [&](int n) {
    for (int i = 0; i < n; ++i, ++tick) {
      if (tick == 5) {
        // Fault window opens: the r1→r2 interior link loses a quarter of
        // its datagrams and the r2→r3 link is bandwidth-starved.
        r2.down->set_loss(0.25);
        r3.down->set_bandwidth(400'000);
      }
      if (tick == kChaosTicks) {
        // Heal.
        r2.down->set_loss(0.0);
        r3.down->set_bandwidth(0);
      }
      host.tick();
      session.run_for(opts.frame_interval_us);
    }
  };

  run_ticks(kChaosTicks);
  const std::uint64_t mid_chaos_leaf_packets =
      viewers.back()->participant->stats().rtp_packets;
  run_ticks(kSettleTicks);
  session.run_for(sim_ms(500));  // drain repairs and reports in flight

  // Interior loss was detected by r2 itself and requested upstream…
  EXPECT_GT(r2.node->stats().gap_nacks, 0u);
  EXPECT_GT(r2.node->stats().nacks_upstream, 0u);
  // …and r1 answered from its cache at least part of the time.
  EXPECT_GT(r1.node->stats().rtx_served, 0u);
  // Viewer last-hop losses were healed at the owning relay.
  EXPECT_GT(r1.node->stats().nacks_received + r2.node->stats().nacks_received +
                r3.node->stats().nacks_received,
            0u);
  // Relays forwarded real traffic with zero payload staging (all legs are
  // view-capable channels).
  for (const auto* r : {&r1, &r2, &r3}) {
    EXPECT_GT(r->node->stats().forwarded_packets, 0u);
    EXPECT_EQ(r->node->stats().payload_bytes_copied, 0u);
  }

  // Every viewer — including the depth-3 leaves — received media, and the
  // leaves kept receiving after the heal.
  for (const auto* v : viewers) {
    EXPECT_GT(v->participant->stats().rtp_packets, 0u);
  }
  EXPECT_GT(viewers.back()->participant->stats().rtp_packets,
            mid_chaos_leaf_packets);

  // Aggregated feedback flowed the whole way up: the AH holds a last RR
  // for the relay root, fed by r1's worst-case summaries.
  EXPECT_GT(r1.node->stats().rrs_aggregated, 0u);
  EXPECT_GT(r1.node->stats().rrs_received, 0u);

  // Per-node telemetry is in the shared registry under distinct prefixes.
  const auto snap = session.telemetry().snapshot();
  EXPECT_GT(snap.counter("relay.r1.forwarded_packets"), 0u);
  EXPECT_GT(snap.counter("relay.r2.forwarded_packets"), 0u);
  EXPECT_GT(snap.counter("relay.r3.forwarded_packets"), 0u);
  EXPECT_EQ(snap.gauge("relay.r1.legs"), 3);  // r2 + two viewers
}

}  // namespace
}  // namespace ads
