// FaultSchedule unit tests at the channel level: each fault class does what
// it says on the wire, episodes clear on schedule, and a given seed replays
// bit-identically.
#include "chaos/fault_schedule.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

namespace ads {
namespace {

using chaos::FaultClass;
using chaos::FaultSchedule;
using chaos::GilbertElliott;
using chaos::RandomScheduleOptions;

Bytes payload(std::size_t n, std::uint8_t fill = 0x5A) { return Bytes(n, fill); }

/// Pump one datagram onto `ch` every `interval_us` until `until_us`,
/// recording each delivery's send-time tag.
void pump(EventLoop& loop, UdpChannel& ch, SimTime interval_us, SimTime until_us) {
  for (SimTime t = interval_us; t <= until_us; t += interval_us) {
    loop.at(t, [&ch] { ch.send(payload(64)); });
  }
}

TEST(FaultSchedule, BlackoutLosesEverythingInsideTheWindow) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.delay_us = 0;
  UdpChannel ch(loop, opts);
  std::vector<SimTime> arrivals;
  ch.set_receiver([&](Bytes) { arrivals.push_back(loop.now()); });

  FaultSchedule faults(loop, /*seed=*/42);
  faults.blackout(ch, sim_ms(100), sim_ms(200));
  pump(loop, ch, sim_ms(10), sim_ms(500));
  loop.run();

  for (SimTime t : arrivals) {
    EXPECT_TRUE(t < sim_ms(100) || t >= sim_ms(300)) << "delivered at " << t;
  }
  // 10 packets before, 20 packets fall in the window, 20 after + the one
  // exactly at 300ms (restore runs before same-tick sends).
  EXPECT_EQ(ch.stats().lost, 20u);
  EXPECT_EQ(faults.episodes_started(), 1u);
  EXPECT_EQ(faults.episodes_cleared(), 1u);
  EXPECT_EQ(faults.active_episodes(), 0u);
  EXPECT_EQ(faults.all_clear_at(), sim_ms(300));
}

TEST(FaultSchedule, BurstLossIsPartialAndClears) {
  EventLoop loop;
  UdpChannelOptions opts;
  UdpChannel ch(loop, opts);
  std::uint64_t in_window = 0;
  ch.set_receiver([&](Bytes) {
    if (loop.now() >= sim_ms(100) && loop.now() < sim_ms(900)) ++in_window;
  });

  FaultSchedule faults(loop, 7);
  GilbertElliott ge;
  ge.loss_bad = 1.0;
  ge.mean_good_us = 40'000;
  ge.mean_bad_us = 40'000;
  faults.burst_loss(ch, sim_ms(100), sim_ms(800), ge);
  pump(loop, ch, sim_ms(2), sim_ms(1200));
  loop.run();

  // Roughly half the window is in the bad state: some but not all of the
  // 400 in-window packets survive.
  EXPECT_GT(in_window, 50u);
  EXPECT_LT(in_window, 380u);
  EXPECT_GT(ch.stats().lost, 0u);
  // After the episode the link is clean again.
  EXPECT_DOUBLE_EQ(ch.loss(), 0.0);
  EXPECT_EQ(faults.episodes_cleared(), 1u);
}

TEST(FaultSchedule, BandwidthCollapseRestoresTheOldRate) {
  EventLoop loop;
  UdpChannelOptions opts;
  opts.bandwidth_bps = 10'000'000;
  UdpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});

  FaultSchedule faults(loop, 3);
  faults.bandwidth_collapse(ch, sim_ms(50), sim_ms(100), /*collapsed=*/100'000,
                            /*restore=*/10'000'000);
  loop.at(sim_ms(60), [&] { EXPECT_EQ(ch.bandwidth_bps(), 100'000u); });
  loop.at(sim_ms(200), [&] { EXPECT_EQ(ch.bandwidth_bps(), 10'000'000u); });
  loop.run();
  EXPECT_EQ(faults.episodes_cleared(), 1u);
}

TEST(FaultSchedule, TcpStallAcceptsNothingThenResumes) {
  EventLoop loop;
  TcpChannelOptions opts;
  opts.bandwidth_bps = 80'000'000;
  TcpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});

  FaultSchedule faults(loop, 5);
  faults.stall(ch, sim_ms(10), sim_ms(50));
  std::size_t during = 999;
  std::size_t after = 0;
  loop.at(sim_ms(20), [&] { during = ch.send(payload(100)); });
  loop.at(sim_ms(100), [&] { after = ch.send(payload(100)); });
  loop.run();
  EXPECT_EQ(during, 0u);
  EXPECT_EQ(after, 100u);
  EXPECT_FALSE(ch.stalled());
  EXPECT_EQ(faults.episodes_cleared(), 1u);
}

TEST(FaultSchedule, TcpDropIsPermanentAndNeverClears) {
  EventLoop loop;
  TcpChannelOptions opts;
  TcpChannel ch(loop, opts);
  std::uint64_t delivered = 0;
  ch.set_receiver([&](Bytes d) { delivered += d.size(); });

  FaultSchedule faults(loop, 5);
  faults.drop(ch, sim_ms(10));
  loop.at(sim_ms(5), [&] { ch.send(payload(200)); });   // in flight at drop
  loop.at(sim_ms(20), [&] { EXPECT_EQ(ch.send(payload(100)), 0u); });
  loop.run();

  EXPECT_TRUE(ch.down());
  EXPECT_EQ(delivered, 0u);  // in-flight data died with the connection
  EXPECT_GT(ch.stats().bytes_lost_on_drop, 0u);
  EXPECT_EQ(faults.episodes_started(), 1u);
  EXPECT_EQ(faults.episodes_cleared(), 0u);
  // all_clear_at ignores drops (they clear only via reconnect).
  EXPECT_EQ(faults.all_clear_at(), 0u);
}

TEST(FaultSchedule, RandomScheduleIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.seed = 21;
    opts.bandwidth_bps = 5'000'000;
    UdpChannel ch(loop, opts);
    std::uint64_t delivered = 0;
    ch.set_receiver([&](Bytes) { ++delivered; });
    FaultSchedule faults(loop, seed);
    faults.script_random(ch, {});
    pump(loop, ch, sim_ms(5), sim_ms(4500));
    loop.run();
    return std::make_tuple(faults.episodes().size(), delivered, ch.stats().lost,
                           faults.all_clear_at());
  };

  const auto a = run(1001);
  const auto b = run(1001);
  EXPECT_EQ(a, b);  // bit-identical replay
  const auto c = run(1002);
  EXPECT_NE(std::get<1>(a), std::get<1>(c));  // different seed, different run
}

TEST(FaultSchedule, RandomScheduleEpisodesAreSequentialAndBounded) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    EventLoop loop;
    UdpChannelOptions opts;
    opts.bandwidth_bps = 5'000'000;
    UdpChannel ch(loop, opts);
    ch.set_receiver([](Bytes) {});
    FaultSchedule faults(loop, seed);
    RandomScheduleOptions ro;
    faults.script_random(ch, ro);

    ASSERT_FALSE(faults.episodes().empty());
    SimTime prev_end = ro.start_us;
    for (const auto& ep : faults.episodes()) {
      EXPECT_GE(ep.start_us, prev_end);
      EXPECT_GT(ep.end_us, ep.start_us);
      EXPECT_LE(ep.end_us, ro.horizon_us);
      prev_end = ep.end_us;
    }
    loop.run();
    EXPECT_EQ(faults.episodes_cleared(), faults.episodes().size());
  }
}

TEST(FaultSchedule, RelayCrashRunsKillThenRestartOnSchedule) {
  EventLoop loop;
  telemetry::Telemetry tel;
  FaultSchedule faults(loop, 3, &tel);

  std::vector<SimTime> kills;
  std::vector<SimTime> restarts;
  faults.relay_crash(
      sim_ms(100), sim_ms(250), [&] { kills.push_back(loop.now()); },
      [&] { restarts.push_back(loop.now()); });

  ASSERT_EQ(faults.episodes().size(), 1u);
  EXPECT_EQ(faults.episodes()[0].kind, FaultClass::kRelayCrash);
  EXPECT_EQ(faults.all_clear_at(), sim_ms(350));

  loop.run_until(sim_ms(200));
  EXPECT_EQ(kills, (std::vector<SimTime>{sim_ms(100)}));
  EXPECT_TRUE(restarts.empty());
  EXPECT_EQ(faults.active_episodes(), 1u);
  loop.run();
  EXPECT_EQ(restarts, (std::vector<SimTime>{sim_ms(350)}));
  EXPECT_EQ(faults.episodes_cleared(), 1u);
  const auto snap = tel.metrics.snapshot();
  EXPECT_EQ(snap.counter("chaos.relay_crash_episodes"), 1u);
}

TEST(FaultSchedule, PermanentRelayCrashNeverCountsAsCleared) {
  EventLoop loop;
  FaultSchedule faults(loop, 3);

  bool killed = false;
  faults.relay_crash(sim_ms(50), sim_ms(999), [&] { killed = true; });
  // Like kDrop: recovery is out of band, so the crash is excluded from the
  // convergence deadline entirely.
  EXPECT_EQ(faults.all_clear_at(), 0u);
  loop.run();
  EXPECT_TRUE(killed);
  EXPECT_EQ(faults.episodes_started(), 1u);
  EXPECT_EQ(faults.episodes_cleared(), 0u);
  EXPECT_EQ(faults.active_episodes(), 1u);
}

TEST(FaultSchedule, RelayStallWedgesForExactlyTheWindow) {
  EventLoop loop;
  FaultSchedule faults(loop, 3);

  std::vector<std::pair<SimTime, bool>> flips;
  faults.relay_stall(sim_ms(80), sim_ms(120), [&](bool stalled) {
    flips.emplace_back(loop.now(), stalled);
  });

  ASSERT_EQ(faults.episodes().size(), 1u);
  EXPECT_EQ(faults.episodes()[0].kind, FaultClass::kRelayStall);
  EXPECT_EQ(faults.all_clear_at(), sim_ms(200));
  loop.run();
  ASSERT_EQ(flips.size(), 2u);
  EXPECT_EQ(flips[0], std::make_pair(sim_ms(80), true));
  EXPECT_EQ(flips[1], std::make_pair(sim_ms(200), false));
  EXPECT_EQ(faults.episodes_cleared(), 1u);
}

TEST(FaultSchedule, JoinFloodAdmitsTheWholeCohortInsideTheWindow) {
  EventLoop loop;
  telemetry::Telemetry tel;
  FaultSchedule faults(loop, 7, &tel);

  std::vector<std::pair<SimTime, std::size_t>> admits;
  faults.join_flood(sim_ms(100), sim_ms(500), 32, [&](std::size_t i) {
    admits.emplace_back(loop.now(), i);
  });
  ASSERT_EQ(faults.episodes().size(), 1u);
  EXPECT_EQ(faults.episodes()[0].kind, FaultClass::kJoinFlood);
  EXPECT_EQ(faults.all_clear_at(), sim_ms(600));

  loop.run();
  ASSERT_EQ(admits.size(), 32u);
  for (std::size_t k = 0; k < admits.size(); ++k) {
    // Indexes arrive in order (jitter is bounded by half a slot, so
    // arrivals never cross), every one inside the episode window.
    EXPECT_EQ(admits[k].second, k);
    EXPECT_GE(admits[k].first, sim_ms(100));
    EXPECT_LT(admits[k].first, sim_ms(600));
  }
  EXPECT_EQ(faults.episodes_started(), 1u);
  EXPECT_EQ(faults.episodes_cleared(), 1u);
  EXPECT_EQ(tel.metrics.snapshot().counter("chaos.join_flood_episodes"), 1u);
}

TEST(FaultSchedule, JoinFloodIsDeterministicPerSeedAndJittered) {
  auto arrivals = [](std::uint64_t seed) {
    EventLoop loop;
    FaultSchedule faults(loop, seed);
    std::vector<SimTime> times;
    faults.join_flood(sim_ms(10), sim_sec(1), 100,
                      [&](std::size_t) { times.push_back(loop.now()); });
    loop.run();
    return times;
  };
  const auto a = arrivals(11);
  EXPECT_EQ(a, arrivals(11));  // bit-identical replay for a fixed seed
  EXPECT_NE(a, arrivals(12));  // ...and the jitter actually depends on it

  // Bursty-but-aperiodic: the jitter must break the even slot grid.
  std::vector<SimTime> gaps;
  for (std::size_t i = 1; i < a.size(); ++i) gaps.push_back(a[i] - a[i - 1]);
  EXPECT_GT(std::set<SimTime>(gaps.begin(), gaps.end()).size(), 1u);
}

TEST(FaultSchedule, JoinFloodEdgeCases) {
  EventLoop loop;
  FaultSchedule faults(loop, 5);

  // A zero-size cohort schedules nothing at all.
  faults.join_flood(sim_ms(10), sim_ms(100), 0, [](std::size_t) { FAIL(); });
  EXPECT_TRUE(faults.episodes().empty());

  // A degenerate window clamps to one microsecond: the whole cohort lands
  // at the start instant and the episode still opens and clears.
  std::vector<SimTime> times;
  faults.join_flood(sim_ms(20), 0, 5,
                    [&](std::size_t) { times.push_back(loop.now()); });
  loop.run();
  EXPECT_EQ(times, std::vector<SimTime>(5, sim_ms(20)));
  EXPECT_EQ(faults.episodes_cleared(), 1u);
}

TEST(FaultSchedule, PublishesChaosTelemetry) {
  EventLoop loop;
  telemetry::Telemetry tel;
  UdpChannelOptions opts;
  UdpChannel ch(loop, opts);
  ch.set_receiver([](Bytes) {});

  FaultSchedule faults(loop, 9, &tel);
  faults.blackout(ch, sim_ms(10), sim_ms(20));
  faults.blackout(ch, sim_ms(50), sim_ms(20));
  loop.run_until(sim_ms(40));
  {
    auto snap = tel.metrics.snapshot();
    EXPECT_EQ(snap.counter("chaos.episodes_started"), 1u);
    EXPECT_EQ(snap.counter("chaos.blackout_episodes"), 1u);
    EXPECT_EQ(snap.counter("chaos.episodes_cleared"), 1u);
    EXPECT_EQ(snap.gauge("chaos.active_episodes"), 0);
  }
  loop.at(sim_ms(60), [&] {
    EXPECT_EQ(tel.metrics.snapshot().gauge("chaos.active_episodes"), 1);
  });
  loop.run();
  auto snap = tel.metrics.snapshot();
  EXPECT_EQ(snap.counter("chaos.episodes_started"), 2u);
  EXPECT_EQ(snap.counter("chaos.episodes_cleared"), 2u);
}

}  // namespace
}  // namespace ads
