// Shared-fan-out soak at broadcast scale: 256 UDP participants on the
// cohort path for 20 chaos ticks (datagram loss on a third of the
// endpoints, PLI storms, codec-split cohorts, pointer churn) with the
// parallel encoder's worker pool engaged. Run under TSan this exercises
// the submit-thread/worker hand-off of cohort-shared encodes; the
// functional asserts pin the fan-out accounting invariants and
// pixel-exact convergence for sampled lossless replicas.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "capture/apps.hpp"
#include "core/app_host.hpp"
#include "core/participant.hpp"
#include "image/metrics.hpp"
#include "rtp/rtcp.hpp"

namespace ads {
namespace {

constexpr std::size_t kParticipants = 256;
constexpr int kChaosTicks = 20;
constexpr int kSettleTicks = 8;

TEST(FanoutSoak, SharedFanout256UdpParticipantsUnderChaos) {
  EventLoop loop;
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.shared_fanout = true;
  opts.frame_interval_us = sim_ms(100);
  // Generous buckets: chaos here is loss/PLI pressure, not rate skips.
  opts.udp_rate_bps = 200'000'000;
  opts.udp_burst_bytes = 4 * 1024 * 1024;
  AppHost host(loop, opts);

  const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

  // Four full replicas on lossless endpoints verify convergence; the other
  // 252 endpoints count datagrams, a third of them dropping packets on
  // chaos ticks. Replica endpoints decode in place (UDP framing).
  std::vector<std::unique_ptr<Participant>> replicas;
  std::vector<ParticipantId> ids;
  std::uint64_t datagrams = 0;
  int tick_no = 0;
  for (std::size_t i = 0; i < kParticipants; ++i) {
    HostEndpoint ep;
    ep.kind = HostEndpoint::Kind::kUdp;
    if (i % 64 == 0) {
      ParticipantOptions popts;
      popts.transport = ParticipantOptions::Transport::kUdp;
      popts.screen_width = 320;
      popts.screen_height = 240;
      auto part = std::make_unique<Participant>(loop, popts);
      Participant* raw = part.get();
      ep.send_datagram = [raw](BytesView d) {
        raw->on_datagram(d);
        return true;
      };
      replicas.push_back(std::move(part));
    } else {
      const bool lossy = (i % 3 == 1);
      ep.send_datagram = [&datagrams, &tick_no, lossy, i](BytesView) {
        // Chaos ticks drop a sliding third of the lossy endpoints' packets.
        if (lossy && tick_no < kChaosTicks &&
            (tick_no + static_cast<int>(i)) % 3 == 0) {
          return false;
        }
        ++datagrams;
        return true;
      };
    }
    ids.push_back(host.add_participant(std::move(ep)));
  }
  // A codec split keeps at least two cohorts alive the whole run. The
  // replica slots (multiples of 64, also multiples of 4) stay on the
  // lossless non-default codec together.
  for (std::size_t i = 0; i < kParticipants; i += 4) {
    host.set_participant_codec(ids[i], ContentPt::kRle);
  }
  // UDP late-joiners request their first frame via PLI (§4.3); the replica
  // endpoints have no uplink wired, so inject theirs directly.
  for (std::size_t i = 0; i < kParticipants; i += 64) {
    PictureLossIndication pli;
    host.on_uplink_packet(ids[i], pli.serialize());
  }

  for (tick_no = 0; tick_no < kChaosTicks + kSettleTicks; ++tick_no) {
    if (tick_no < kChaosTicks) {
      // PLI storm from a rotating slice: forces full refreshes to fan out
      // through the cohort encoder alongside incremental updates.
      for (std::size_t i = static_cast<std::size_t>(tick_no) * 7;
           i < static_cast<std::size_t>(tick_no) * 7 + 5; ++i) {
        PictureLossIndication pli;
        host.on_uplink_packet(ids[i % kParticipants], pli.serialize());
      }
      host.set_pointer({tick_no * 9, tick_no * 5});
    }
    host.tick();
    loop.run_until(loop.now() + opts.frame_interval_us);
  }

  const AppHost::Stats st = host.stats();
  // Fan-out accounting invariants: the cohort stage actually deduplicated
  // (256 mostly-identical operating points), and unique encodes never
  // exceeded the per-cohort band count.
  EXPECT_GT(st.fanout_cohorts, 0u);
  // With ~64 same-operating-point members per cohort, shared (deduplicated)
  // encode requests must dwarf the unique encodes actually performed.
  EXPECT_GT(st.fanout_encodes_shared, st.fanout_encodes_unique);
  EXPECT_GT(st.plis_received, 0u);
  EXPECT_GT(datagrams, 0u);

  // The sampled lossless replicas converged pixel-exact despite the storm.
  const Image& truth = host.capturer().last_frame();
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const Image replica = replicas[i]->screen().crop(truth.bounds());
    EXPECT_EQ(diff_pixel_count(truth, replica), 0) << "replica " << i;
  }
}

}  // namespace
}  // namespace ads
