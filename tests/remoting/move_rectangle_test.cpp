#include "remoting/move_rectangle.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

MoveRectangle sample() {
  return MoveRectangle{/*window_id=*/3, /*source_left=*/100, /*source_top=*/200,
                       /*width=*/50, /*height=*/60, /*dest_left=*/100,
                       /*dest_top=*/150};
}

TEST(MoveRectangle, WireLayoutMatchesFigure12) {
  const Bytes wire = sample().serialize();
  // Common header (4) + six u32 fields (24).
  ASSERT_EQ(wire.size(), 28u);
  EXPECT_EQ(wire[0], 3);  // Msg Type = MoveRectangle
  EXPECT_EQ(wire[3], 3);  // WindowID low byte
  // Source Left = 100 at offset 4..7.
  EXPECT_EQ(wire[7], 100);
  // Source Top = 200 at offset 8..11.
  EXPECT_EQ(wire[11], 200);
  // Width = 50 at 12..15, Height = 60 at 16..19.
  EXPECT_EQ(wire[15], 50);
  EXPECT_EQ(wire[19], 60);
  // Destination Left/Top at 20..27.
  EXPECT_EQ(wire[23], 100);
  EXPECT_EQ(wire[27], 150);
}

TEST(MoveRectangle, RoundTrip) {
  auto parsed = MoveRectangle::parse(sample().serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, sample());
}

TEST(MoveRectangle, OverlappingMoveIsLegal) {
  // §5.2.3: "Source and destination rectangles may overlap."
  MoveRectangle mr = sample();
  mr.dest_left = mr.source_left + 10;
  mr.dest_top = mr.source_top;
  auto parsed = MoveRectangle::parse(mr.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, mr);
}

TEST(MoveRectangle, WrongTypeRejected) {
  Bytes wire = sample().serialize();
  wire[0] = 2;
  EXPECT_FALSE(MoveRectangle::parse(wire).ok());
}

TEST(MoveRectangle, TruncatedRejected) {
  const Bytes wire = sample().serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(MoveRectangle::parse(BytesView(wire).subspan(0, len)).ok()) << len;
  }
}

TEST(MoveRectangle, TrailingBytesRejected) {
  Bytes wire = sample().serialize();
  wire.push_back(0);
  EXPECT_FALSE(MoveRectangle::parse(wire).ok());
}

TEST(MoveRectangle, MaxCoordinates) {
  MoveRectangle mr;
  mr.window_id = 0xFFFF;
  mr.source_left = mr.source_top = mr.width = mr.height = 0xFFFFFFFF;
  mr.dest_left = mr.dest_top = 0xFFFFFFFF;
  auto parsed = MoveRectangle::parse(mr.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, mr);
}

}  // namespace
}  // namespace ads
