#include "remoting/message.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(RemotingDemux, RoutesAllFourTypes) {
  RemotingDemux demux;

  WindowManagerInfo wmi;
  wmi.records = {{1, 0, 0, 0, 100, 100}};
  auto r1 = demux.feed(wmi.serialize(), false);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->has_value());
  EXPECT_TRUE(std::holds_alternative<WindowManagerInfo>(**r1));

  RegionUpdate ru;
  ru.window_id = 1;
  ru.content_pt = 98;
  ru.content = {1, 2, 3};
  auto frags = fragment_region_update(ru, 1200);
  auto r2 = demux.feed(frags[0].payload, frags[0].marker);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2->has_value());
  EXPECT_TRUE(std::holds_alternative<RegionUpdate>(**r2));

  MoveRectangle mr{1, 0, 0, 10, 10, 5, 5};
  auto r3 = demux.feed(mr.serialize(), false);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r3->has_value());
  EXPECT_TRUE(std::holds_alternative<MoveRectangle>(**r3));

  MousePointerInfo mpi{1, 98, 4, 5, {}};
  auto r4 = demux.feed(mpi.serialize(), true);
  ASSERT_TRUE(r4.ok());
  ASSERT_TRUE(r4->has_value());
  EXPECT_TRUE(std::holds_alternative<MousePointerInfo>(**r4));
}

TEST(RemotingDemux, UnknownTypesIgnoredNotFatal) {
  // §5.1.2: "Participants MAY ignore such additional message types."
  RemotingDemux demux;
  Bytes unknown = {200, 0, 0, 1, 0xDE, 0xAD};
  auto result = demux.feed(unknown, true);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_value());
  EXPECT_EQ(demux.ignored_unknown_types(), 1u);
}

TEST(RemotingDemux, InterleavedPointerAndRegionReassembly) {
  // A multi-fragment RegionUpdate with a fragmented MousePointerInfo
  // interleaved: separate reassemblers must not interfere.
  RemotingDemux demux;
  RegionUpdate ru;
  ru.window_id = 1;
  ru.content_pt = 98;
  ru.content.assign(3000, 0x11);
  MousePointerInfo mpi;
  mpi.window_id = 1;
  mpi.content_pt = 98;
  mpi.icon.assign(3000, 0x22);

  auto ru_frags = fragment_region_update(ru, 1200);
  auto mpi_frags = fragment_region_update(mpi.as_region_update(), 1200,
                                          RemotingType::kMousePointerInfo);
  ASSERT_GE(ru_frags.size(), 2u);
  ASSERT_GE(mpi_frags.size(), 2u);

  int region_done = 0;
  int pointer_done = 0;
  auto feed = [&](const RegionUpdateFragment& f) {
    auto r = demux.feed(f.payload, f.marker);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) {
      if (std::holds_alternative<RegionUpdate>(**r)) ++region_done;
      if (std::holds_alternative<MousePointerInfo>(**r)) ++pointer_done;
    }
  };
  // Interleave.
  feed(ru_frags[0]);
  feed(mpi_frags[0]);
  feed(ru_frags[1]);
  feed(mpi_frags[1]);
  for (std::size_t i = 2; i < ru_frags.size(); ++i) feed(ru_frags[i]);
  for (std::size_t i = 2; i < mpi_frags.size(); ++i) feed(mpi_frags[i]);

  EXPECT_EQ(region_done, 1);
  EXPECT_EQ(pointer_done, 1);
}

TEST(RemotingDemux, ParseErrorsCounted) {
  RemotingDemux demux;
  const Bytes garbage = {2};  // truncated common header
  EXPECT_FALSE(demux.feed(garbage, true).ok());
  EXPECT_EQ(demux.parse_errors(), 1u);
}

TEST(RemotingDemux, ResetAbandonsPartialMessages) {
  RemotingDemux demux;
  RegionUpdate ru;
  ru.content_pt = 98;
  ru.content.assign(3000, 1);
  auto frags = fragment_region_update(ru, 1200);
  (void)demux.feed(frags[0].payload, frags[0].marker);
  demux.reset();
  // Continuation now has no start.
  auto result = demux.feed(frags[1].payload, frags[1].marker);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace ads
