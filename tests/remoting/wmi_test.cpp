#include "remoting/window_manager_info.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

/// The exact WindowManagerInfo message of draft Figure 9 (three window
/// records for the Figure 2 scenario), byte for byte.
Bytes figure9_bytes() {
  ByteWriter w;
  // Common header: Msg Type = 1, Parameter = 0, WindowID = 0.
  w.u8(1);
  w.u8(0);
  w.u16(0);
  // Record 1: WindowID=1 GroupID=1 Reserved=0 L=220 T=150 W=350 H=450.
  w.u16(1);
  w.u8(1);
  w.u8(0);
  w.u32(220);
  w.u32(150);
  w.u32(350);
  w.u32(450);
  // Record 2: WindowID=2 GroupID=2 L=850 T=320 W=160 H=150.
  w.u16(2);
  w.u8(2);
  w.u8(0);
  w.u32(850);
  w.u32(320);
  w.u32(160);
  w.u32(150);
  // Record 3: WindowID=3 GroupID=1 L=450 T=400 W=350 H=300.
  w.u16(3);
  w.u8(1);
  w.u8(0);
  w.u32(450);
  w.u32(400);
  w.u32(350);
  w.u32(300);
  return w.take();
}

WindowManagerInfo figure9_message() {
  WindowManagerInfo msg;
  msg.records = {
      {1, 1, 220, 150, 350, 450},
      {2, 2, 850, 320, 160, 150},
      {3, 1, 450, 400, 350, 300},
  };
  return msg;
}

TEST(Wmi, Figure9GoldenSerialization) {
  EXPECT_EQ(figure9_message().serialize(), figure9_bytes());
}

TEST(Wmi, Figure9GoldenParse) {
  auto parsed = WindowManagerInfo::parse(figure9_bytes());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, figure9_message());
}

TEST(Wmi, RecordSizeIs20Bytes) {
  // "Each window record is 20-bytes."
  EXPECT_EQ(WindowRecord::kSize, 20u);
  EXPECT_EQ(figure9_bytes().size(), 4u + 3 * 20u);
}

TEST(Wmi, ZOrderIsRecordOrder) {
  // "The first record describes the window at the bottom of the stacking
  // order, the last record the one on top."
  auto parsed = WindowManagerInfo::parse(figure9_bytes());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->records.front().window_id, 1);
  EXPECT_EQ(parsed->records.back().window_id, 3);
}

TEST(Wmi, EmptyMessageIsLegal) {
  // Zero records = all windows closed.
  WindowManagerInfo msg;
  auto parsed = WindowManagerInfo::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->records.empty());
}

TEST(Wmi, ParameterAndWindowIdIgnoredOnParse) {
  // §5.2.1: "Parameter and WindowID fields of common remoting/HIP header
  // MUST be ignored."
  Bytes data = figure9_bytes();
  data[1] = 0xFF;
  data[2] = 0xAB;
  data[3] = 0xCD;
  auto parsed = WindowManagerInfo::parse(data);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, figure9_message());
}

TEST(Wmi, WrongMessageTypeRejected) {
  Bytes data = figure9_bytes();
  data[0] = 2;
  EXPECT_FALSE(WindowManagerInfo::parse(data).ok());
}

TEST(Wmi, TruncatedRecordRejected) {
  Bytes data = figure9_bytes();
  data.pop_back();
  auto parsed = WindowManagerInfo::parse(data);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);  // not a record multiple
}

TEST(Wmi, DuplicateWindowIdsRejected) {
  WindowManagerInfo msg;
  msg.records = {{1, 0, 0, 0, 10, 10}, {1, 0, 5, 5, 10, 10}};
  EXPECT_FALSE(WindowManagerInfo::parse(msg.serialize()).ok());
}

TEST(Wmi, FromWindowManagerMirrorsSharedState) {
  WindowManager wm;
  const WindowId a = wm.create({220, 150, 350, 450}, 1);
  wm.create({850, 320, 160, 150}, 2);
  const auto msg = WindowManagerInfo::from(wm);
  ASSERT_EQ(msg.records.size(), 2u);
  EXPECT_EQ(msg.records[0].window_id, a);
  EXPECT_EQ(msg.records[0].left, 220u);
  EXPECT_EQ(msg.records[0].group_id, 1);
}

TEST(Wmi, FromWindowManagerRespectsSharingFilter) {
  WindowManager wm;
  wm.create({0, 0, 10, 10}, 1);
  wm.create({20, 20, 10, 10}, 2);
  wm.share_group(2);
  const auto msg = WindowManagerInfo::from(wm);
  ASSERT_EQ(msg.records.size(), 1u);
  EXPECT_EQ(msg.records[0].group_id, 2);
}

TEST(Wmi, NegativeCoordinatesClampToZeroOnWire) {
  // Wire fields are unsigned (§4.1); a window dragged off-screen clamps.
  WindowManager wm;
  const WindowId a = wm.create({-50, -10, 100, 100}, 0);
  const auto msg = WindowManagerInfo::from(wm);
  ASSERT_EQ(msg.records.size(), 1u);
  EXPECT_EQ(msg.records[0].window_id, a);
  EXPECT_EQ(msg.records[0].left, 0u);
  EXPECT_EQ(msg.records[0].top, 0u);
}

}  // namespace
}  // namespace ads
