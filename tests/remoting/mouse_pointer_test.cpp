#include "remoting/mouse_pointer_info.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(MousePointerInfo, PositionOnlyRoundTrip) {
  // §5.2.4: "The payload of MousePointerInfo message can be only the left
  // and top coordinates."
  MousePointerInfo msg;
  msg.window_id = 2;
  msg.content_pt = 98;
  msg.left = 640;
  msg.top = 480;
  EXPECT_FALSE(msg.has_icon());
  auto parsed = MousePointerInfo::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, msg);
}

TEST(MousePointerInfo, WithIconRoundTrip) {
  MousePointerInfo msg;
  msg.window_id = 1;
  msg.content_pt = 96;
  msg.left = 10;
  msg.top = 20;
  msg.icon = {9, 8, 7, 6, 5};
  EXPECT_TRUE(msg.has_icon());
  auto parsed = MousePointerInfo::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, msg);
}

TEST(MousePointerInfo, UsesMessageType4) {
  // "The format of this message is same as RegionUpdate message ... except
  // they have different message types."
  const Bytes wire = MousePointerInfo{1, 98, 0, 0, {}}.serialize();
  EXPECT_EQ(wire[0], 4);
}

TEST(MousePointerInfo, SharesRegionUpdateFormat) {
  MousePointerInfo msg{5, 97, 111, 222, {1, 2, 3}};
  const RegionUpdate ru = msg.as_region_update();
  EXPECT_EQ(ru.window_id, 5);
  EXPECT_EQ(ru.content_pt, 97);
  EXPECT_EQ(ru.left, 111u);
  EXPECT_EQ(ru.top, 222u);
  EXPECT_EQ(ru.content, (Bytes{1, 2, 3}));
  EXPECT_EQ(MousePointerInfo::from_region_update(ru), msg);
}

TEST(MousePointerInfo, RegionUpdateTypeRejected) {
  // A RegionUpdate (type 2) payload must not parse as MousePointerInfo.
  Bytes wire = MousePointerInfo{1, 98, 0, 0, {}}.serialize();
  wire[0] = 2;
  EXPECT_FALSE(MousePointerInfo::parse(wire).ok());
}

TEST(MousePointerInfo, TruncatedRejected) {
  const Bytes wire = MousePointerInfo{1, 98, 5, 6, {1, 2}}.serialize();
  for (std::size_t len = 0; len < 12; ++len) {
    EXPECT_FALSE(MousePointerInfo::parse(BytesView(wire).subspan(0, len)).ok()) << len;
  }
}

TEST(MousePointerInfo, LargeIconFragmentsLikeRegionUpdate) {
  MousePointerInfo msg;
  msg.window_id = 1;
  msg.content_pt = 98;
  msg.icon.assign(5000, 0x5A);
  auto frags = fragment_region_update(msg.as_region_update(), 1200,
                                      RemotingType::kMousePointerInfo);
  ASSERT_GT(frags.size(), 1u);
  EXPECT_EQ(frags[0].payload[0], 4);  // type 4 on every fragment

  RegionUpdateReassembler reasm(RemotingType::kMousePointerInfo);
  std::optional<RegionUpdate> done;
  for (const auto& f : frags) {
    auto result = reasm.feed(f.payload, f.marker);
    ASSERT_TRUE(result.ok());
    if (result->has_value()) done = **result;
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(MousePointerInfo::from_region_update(*done), msg);
}

}  // namespace
}  // namespace ads
