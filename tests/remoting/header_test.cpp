#include "remoting/header.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(CommonHeader, WireLayoutMatchesFigure7) {
  // | Msg Type (8) | Parameter (8) | WindowID (16) |
  CommonHeader h{2, 0xC5, 0x1234};
  ByteWriter w;
  h.write(w);
  EXPECT_EQ(w.data(), (Bytes{0x02, 0xC5, 0x12, 0x34}));
  EXPECT_EQ(CommonHeader::kSize, 4u);
}

TEST(CommonHeader, RoundTrip) {
  CommonHeader h{4, 7, 65535};
  ByteWriter w;
  h.write(w);
  ByteReader r(w.view());
  auto parsed = CommonHeader::read(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, h);
}

TEST(CommonHeader, TruncatedFails) {
  const Bytes data = {1, 2, 3};
  ByteReader r(data);
  EXPECT_FALSE(CommonHeader::read(r).ok());
}

TEST(CommonHeader, ParameterSplitsIntoFirstPacketAndPt) {
  // Figure 10: | RegionUpdate |F| PT |.
  EXPECT_EQ(CommonHeader::make_parameter(true, 98), 0x80 | 98);
  EXPECT_EQ(CommonHeader::make_parameter(false, 98), 98);
  CommonHeader h;
  h.parameter = CommonHeader::make_parameter(true, 0x7F);
  EXPECT_TRUE(h.first_packet());
  EXPECT_EQ(h.content_pt(), 0x7F);
  h.parameter = CommonHeader::make_parameter(false, 5);
  EXPECT_FALSE(h.first_packet());
  EXPECT_EQ(h.content_pt(), 5);
}

TEST(CommonHeader, PtMaskedTo7Bits) {
  EXPECT_EQ(CommonHeader::make_parameter(false, 0xFF), 0x7F);
}

TEST(RemotingTypes, Table1Registry) {
  // Draft Table 1: the four remoting message types.
  EXPECT_EQ(static_cast<int>(RemotingType::kWindowManagerInfo), 1);
  EXPECT_EQ(static_cast<int>(RemotingType::kRegionUpdate), 2);
  EXPECT_EQ(static_cast<int>(RemotingType::kMoveRectangle), 3);
  EXPECT_EQ(static_cast<int>(RemotingType::kMousePointerInfo), 4);
  for (int v = 1; v <= 4; ++v) EXPECT_TRUE(is_known_remoting_type(static_cast<std::uint8_t>(v)));
  EXPECT_FALSE(is_known_remoting_type(0));
  EXPECT_FALSE(is_known_remoting_type(5));
  EXPECT_FALSE(is_known_remoting_type(121));
}

TEST(RemotingTypes, Names) {
  EXPECT_STREQ(to_string(RemotingType::kWindowManagerInfo), "WindowManagerInfo");
  EXPECT_STREQ(to_string(RemotingType::kRegionUpdate), "RegionUpdate");
  EXPECT_STREQ(to_string(RemotingType::kMoveRectangle), "MoveRectangle");
  EXPECT_STREQ(to_string(RemotingType::kMousePointerInfo), "MousePointerInfo");
}

TEST(FragmentTypes, Table2TruthTable) {
  // Draft Table 2: marker bit x FirstPacket bit.
  EXPECT_EQ(classify_fragment(true, true), FragmentType::kNotFragmented);
  EXPECT_EQ(classify_fragment(false, true), FragmentType::kStart);
  EXPECT_EQ(classify_fragment(false, false), FragmentType::kContinuation);
  EXPECT_EQ(classify_fragment(true, false), FragmentType::kEnd);
}

}  // namespace
}  // namespace ads
