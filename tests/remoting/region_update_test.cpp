#include "remoting/region_update.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ads {
namespace {

RegionUpdate sample(std::size_t content_size) {
  RegionUpdate msg;
  msg.window_id = 1;
  msg.content_pt = 98;
  msg.left = 220;
  msg.top = 150;
  msg.content.resize(content_size);
  Prng rng(content_size + 1);
  for (auto& b : msg.content) b = static_cast<std::uint8_t>(rng.next_u32());
  return msg;
}

RegionUpdate reassemble(const std::vector<RegionUpdateFragment>& frags) {
  RegionUpdateReassembler reasm;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    auto result = reasm.feed(frags[i].payload, frags[i].marker);
    EXPECT_TRUE(result.ok());
    if (i + 1 < frags.size()) {
      EXPECT_FALSE(result->has_value()) << "completed early at " << i;
    } else {
      EXPECT_TRUE(result->has_value());
      return **result;
    }
  }
  return {};
}

TEST(RegionUpdate, Figure11WireLayoutNonFragmented) {
  // Figure 11: Msg Type=2, F=1, PT, WindowID=1, Left, Top, payload;
  // both the RTP marker bit and the FirstPacket bit set.
  RegionUpdate msg = sample(5);
  auto frags = fragment_region_update(msg, 1200);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_TRUE(frags[0].marker);
  EXPECT_EQ(frags[0].type(), FragmentType::kNotFragmented);
  const Bytes& p = frags[0].payload;
  ASSERT_EQ(p.size(), 4u + 8u + 5u);
  EXPECT_EQ(p[0], 2);            // Msg Type = RegionUpdate
  EXPECT_EQ(p[1], 0x80 | 98);    // F=1 | PT
  EXPECT_EQ(p[2], 0x00);
  EXPECT_EQ(p[3], 0x01);         // WindowID = 1
  EXPECT_EQ(p[7], 220);          // Left (low byte)
  EXPECT_EQ(p[11], 150);         // Top (low byte)
}

TEST(RegionUpdate, SinglePacketRoundTrip) {
  const RegionUpdate msg = sample(100);
  auto frags = fragment_region_update(msg, 1200);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(reassemble(frags), msg);
}

TEST(RegionUpdate, FragmentationRespectsMtu) {
  const RegionUpdate msg = sample(10'000);
  const std::size_t mtu = 1200;
  auto frags = fragment_region_update(msg, mtu);
  EXPECT_GT(frags.size(), 1u);
  for (const auto& f : frags) EXPECT_LE(f.payload.size(), mtu);
  EXPECT_EQ(reassemble(frags), msg);
}

TEST(RegionUpdate, Table2FragmentSequence) {
  const RegionUpdate msg = sample(5000);
  auto frags = fragment_region_update(msg, 1200);
  ASSERT_GE(frags.size(), 3u);
  EXPECT_EQ(frags.front().type(), FragmentType::kStart);
  for (std::size_t i = 1; i + 1 < frags.size(); ++i) {
    EXPECT_EQ(frags[i].type(), FragmentType::kContinuation) << i;
  }
  EXPECT_EQ(frags.back().type(), FragmentType::kEnd);
  // Only the last packet carries the marker (§5.1.1).
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) EXPECT_FALSE(frags[i].marker);
  EXPECT_TRUE(frags.back().marker);
}

TEST(RegionUpdate, LeftTopOnlyInFirstFragment) {
  // §5.2.2: "left and top fields are carried only in the first RTP payload".
  const RegionUpdate msg = sample(5000);
  auto frags = fragment_region_update(msg, 1200);
  EXPECT_EQ(frags[0].payload.size(), 1200u);
  // Continuation payload = 4-byte header + content (no left/top).
  std::size_t total = 0;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    total += frags[i].payload.size() - 4u - (i == 0 ? 8u : 0u);
  }
  EXPECT_EQ(total, msg.content.size());
}

TEST(RegionUpdate, EmptyContentStillValid) {
  // A RegionUpdate with no payload bytes (e.g. pointer move carrier).
  const RegionUpdate msg = sample(0);
  auto frags = fragment_region_update(msg, 1200);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_TRUE(frags[0].marker);
  EXPECT_EQ(reassemble(frags), msg);
}

TEST(RegionUpdate, ExactMtuBoundary) {
  // Content that exactly fills the first packet must not spawn an empty
  // continuation.
  const std::size_t mtu = 100;
  const RegionUpdate msg = sample(mtu - 12);
  auto frags = fragment_region_update(msg, mtu);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_TRUE(frags[0].marker);
}

TEST(RegionUpdate, OneByteOverMtuSplitsInTwo) {
  const std::size_t mtu = 100;
  const RegionUpdate msg = sample(mtu - 12 + 1);
  auto frags = fragment_region_update(msg, mtu);
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[1].payload.size(), 4u + 1u);
  EXPECT_EQ(reassemble(frags), msg);
}

TEST(Reassembler, ContinuationWithoutStartIsBadState) {
  const RegionUpdate msg = sample(5000);
  auto frags = fragment_region_update(msg, 1200);
  RegionUpdateReassembler reasm;
  auto result = reasm.feed(frags[1].payload, frags[1].marker);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), ParseError::kBadState);
}

TEST(Reassembler, NewStartAbortsOldMessage) {
  const RegionUpdate first = sample(5000);
  const RegionUpdate second = sample(100);
  auto frags1 = fragment_region_update(first, 1200);
  auto frags2 = fragment_region_update(second, 1200);

  RegionUpdateReassembler reasm;
  (void)reasm.feed(frags1[0].payload, frags1[0].marker);  // start, no end
  auto result = reasm.feed(frags2[0].payload, frags2[0].marker);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ(**result, second);
  EXPECT_EQ(reasm.messages_aborted(), 1u);
}

TEST(Reassembler, MismatchedWindowIdMidMessageRejected) {
  const RegionUpdate msg = sample(5000);
  auto frags = fragment_region_update(msg, 1200);
  Bytes corrupted = frags[1].payload;
  corrupted[3] ^= 0xFF;  // change WindowID
  RegionUpdateReassembler reasm;
  (void)reasm.feed(frags[0].payload, frags[0].marker);
  auto result = reasm.feed(corrupted, frags[1].marker);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(reasm.in_progress());
}

TEST(Reassembler, OversizeMessageRejected) {
  RegionUpdateReassembler reasm(RemotingType::kRegionUpdate, 1000);
  const RegionUpdate msg = sample(5000);
  auto frags = fragment_region_update(msg, 1200);
  auto result = reasm.feed(frags[0].payload, frags[0].marker);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), ParseError::kOverflow);
}

TEST(Reassembler, WrongMessageTypeRejected) {
  RegionUpdateReassembler reasm(RemotingType::kMousePointerInfo);
  const RegionUpdate msg = sample(10);
  auto frags = fragment_region_update(msg, 1200);  // type = RegionUpdate
  EXPECT_FALSE(reasm.feed(frags[0].payload, frags[0].marker).ok());
}

TEST(Reassembler, CountsCompletedMessages) {
  RegionUpdateReassembler reasm;
  for (int i = 0; i < 3; ++i) {
    const RegionUpdate msg = sample(3000);
    for (const auto& f : fragment_region_update(msg, 500)) {
      ASSERT_TRUE(reasm.feed(f.payload, f.marker).ok());
    }
  }
  EXPECT_EQ(reasm.messages_completed(), 3u);
  EXPECT_EQ(reasm.messages_aborted(), 0u);
}

class MtuSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MtuSweep, RoundTripAtEveryMtu) {
  const RegionUpdate msg = sample(20'000);
  auto frags = fragment_region_update(msg, GetParam());
  for (const auto& f : frags) EXPECT_LE(f.payload.size(), GetParam());
  EXPECT_EQ(reassemble(frags), msg);
}

INSTANTIATE_TEST_SUITE_P(Mtus, MtuSweep,
                         ::testing::Values(13, 64, 576, 1200, 1460, 9000, 65000));

TEST(FragmentInto, StreamWindowsMatchPerFragmentSerialisation) {
  // The zero-copy stream writer must produce, fragment by fragment, exactly
  // the bytes of the allocating fragmenter — offsets/lengths window a single
  // buffer instead of owning per-fragment vectors.
  for (const std::size_t content : {std::size_t{0}, std::size_t{5},
                                    std::size_t{1188}, std::size_t{1189},
                                    std::size_t{20'000}}) {
    for (const std::size_t mtu : {std::size_t{13}, std::size_t{64},
                                  std::size_t{1200}, std::size_t{65000}}) {
      const RegionUpdate msg = sample(content);
      auto frags = fragment_region_update(msg, mtu);
      Bytes stream;
      auto spans = fragment_region_update_into(msg, mtu, stream);
      ASSERT_EQ(spans.size(), frags.size()) << content << "/" << mtu;
      std::size_t total = 0;
      for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].marker, frags[i].marker) << i;
        EXPECT_EQ(spans[i].offset, total) << i;  // contiguous, in order
        const BytesView window(stream.data() + spans[i].offset, spans[i].length);
        EXPECT_TRUE(std::equal(window.begin(), window.end(),
                               frags[i].payload.begin(), frags[i].payload.end()))
            << "fragment " << i << " bytes diverged at " << content << "/" << mtu;
        total += spans[i].length;
      }
      EXPECT_EQ(total, stream.size());
    }
  }
}

TEST(FragmentInto, AppendsToExistingStream) {
  // dest is append-only: a caller can pack several messages into one buffer.
  const RegionUpdate a = sample(300);
  const RegionUpdate b = sample(40);
  Bytes stream = {0xEE, 0xFF};  // pre-existing bytes survive
  auto sa = fragment_region_update_into(a, 128, stream);
  const std::size_t after_a = stream.size();
  auto sb = fragment_region_update_into(b, 128, stream,
                                        RemotingType::kMousePointerInfo);
  EXPECT_EQ(stream[0], 0xEE);
  EXPECT_EQ(stream[1], 0xFF);
  ASSERT_FALSE(sa.empty());
  ASSERT_FALSE(sb.empty());
  EXPECT_EQ(sa.front().offset, 2u);
  EXPECT_EQ(sb.front().offset, after_a);
  // The second message really carries the requested type byte.
  EXPECT_EQ(stream[sb.front().offset],
            static_cast<std::uint8_t>(RemotingType::kMousePointerInfo));
}

TEST(FragmentInto, StreamReassemblesIdentically) {
  const RegionUpdate msg = sample(5000);
  Bytes stream;
  auto spans = fragment_region_update_into(msg, 500, stream);
  RegionUpdateReassembler reasm;
  std::optional<RegionUpdate> done;
  for (const FragmentSpan& s : spans) {
    auto r = reasm.feed(BytesView(stream.data() + s.offset, s.length), s.marker);
    ASSERT_TRUE(r.ok());
    if (r->has_value()) done = **r;
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, msg);
}

}  // namespace
}  // namespace ads
