// ads::rate unit tests: AIMD increase/decrease behaviour on RR loss and
// jitter, the decrease holdoff, budget clamps, the TCP backlog-trend signal,
// the quality/fps degradation schedule, and bit-determinism of the loop.
#include "rate/rate_controller.hpp"

#include <gtest/gtest.h>

namespace ads::rate {
namespace {

AdaptationOptions enabled_opts() {
  AdaptationOptions o;
  o.enabled = true;
  return o;
}

TEST(RateController, StartsAtInitialBudgetAndMatchingRung) {
  RateController c(Transport::kUdp, enabled_opts());
  EXPECT_EQ(c.budget_bps(), 2'000'000u);
  // 2.0 Mbit/s fits the q50 rung exactly at full frame rate.
  EXPECT_EQ(c.current().quality_step, 2);
  EXPECT_EQ(c.current().dct_quality, 50);
  EXPECT_EQ(c.current().fps_divisor, 1);
  // Construction is not an adaptation event.
  EXPECT_EQ(c.stats().increases, 0u);
  EXPECT_EQ(c.stats().quality_changes, 0u);
}

TEST(RateController, CleanReportIncreasesAdditively) {
  RateController c(Transport::kUdp, enabled_opts());
  c.on_receiver_report(0, 0, 1'000'000);
  c.update(1'000'000);
  EXPECT_EQ(c.budget_bps(), 2'100'000u);
  EXPECT_EQ(c.stats().increases, 1u);
  // No new report: the budget holds between feedback intervals.
  c.update(2'000'000);
  EXPECT_EQ(c.budget_bps(), 2'100'000u);
  EXPECT_EQ(c.stats().increases, 1u);
}

TEST(RateController, LossyReportDecreasesMultiplicatively) {
  RateController c(Transport::kUdp, enabled_opts());
  c.on_receiver_report(50, 0, 1'000'000);  // ~20% loss
  c.update(1'000'000);
  EXPECT_EQ(c.budget_bps(), 1'400'000u);  // 2.0M * 0.7
  EXPECT_EQ(c.stats().decreases, 1u);
}

TEST(RateController, JitterAloneTriggersDecrease) {
  RateController c(Transport::kUdp, enabled_opts());
  c.on_receiver_report(0, 5'000, 1'000'000);  // > 2700-tick threshold
  c.update(1'000'000);
  EXPECT_EQ(c.stats().decreases, 1u);
  EXPECT_EQ(c.budget_bps(), 1'400'000u);
}

TEST(RateController, DecayingJitterDoesNotHoldBudgetDown) {
  // After a queueing episode the RFC 3550 jitter EWMA stays above the
  // threshold for seconds while strictly decaying; those reports must read
  // as recovery (increase), not congestion.
  RateController c(Transport::kUdp, enabled_opts());
  c.on_receiver_report(0, 50'000, 1'000'000);  // rising: congested
  c.update(1'000'000);
  EXPECT_EQ(c.stats().decreases, 1u);
  c.on_receiver_report(0, 40'000, 2'000'000);  // decaying + clean loss
  c.update(2'000'000);
  c.on_receiver_report(0, 30'000, 3'000'000);
  c.update(3'000'000);
  EXPECT_EQ(c.stats().decreases, 1u);
  EXPECT_EQ(c.stats().increases, 2u);
}

TEST(RateController, MidbandLossHoldsBudget) {
  RateController c(Transport::kUdp, enabled_opts());
  c.on_receiver_report(8, 0, 1'000'000);  // between clean (3) and lossy (13)
  c.update(1'000'000);
  EXPECT_EQ(c.budget_bps(), 2'000'000u);
  EXPECT_EQ(c.stats().increases, 0u);
  EXPECT_EQ(c.stats().decreases, 0u);
}

TEST(RateController, DecreaseHoldoffPunishesOncePerWindow) {
  RateController c(Transport::kUdp, enabled_opts());
  c.on_receiver_report(100, 0, 1'000'000);
  c.update(1'000'000);
  ASSERT_EQ(c.stats().decreases, 1u);
  // A second lossy report 100 ms later (inside the 500 ms holdoff) is the
  // same congestion episode: no further cut.
  c.on_receiver_report(100, 0, 1'100'000);
  c.update(1'100'000);
  EXPECT_EQ(c.stats().decreases, 1u);
  EXPECT_EQ(c.budget_bps(), 1'400'000u);
  // Past the holdoff the loop may cut again.
  c.on_receiver_report(100, 0, 1'700'000);
  c.update(1'700'000);
  EXPECT_EQ(c.stats().decreases, 2u);
  EXPECT_NEAR(static_cast<double>(c.budget_bps()), 980'000.0, 1.0);
}

TEST(RateController, BudgetClampsToConfiguredBounds) {
  AdaptationOptions o = enabled_opts();
  o.min_rate_bps = 500'000;
  o.max_rate_bps = 2'200'000;
  RateController c(Transport::kUdp, o);
  // Hammer with loss far past the holdoff each time: floor at min.
  for (int i = 0; i < 20; ++i) {
    const SimTime t = 1'000'000 + static_cast<SimTime>(i) * 1'000'000;
    c.on_receiver_report(200, 0, t);
    c.update(t);
  }
  EXPECT_EQ(c.budget_bps(), 500'000u);
  // Clean reports forever: ceiling at max.
  for (int i = 0; i < 40; ++i) {
    const SimTime t = 100'000'000 + static_cast<SimTime>(i) * 1'000'000;
    c.on_receiver_report(0, 0, t);
    c.update(t);
  }
  EXPECT_EQ(c.budget_bps(), 2'200'000u);
}

TEST(RateController, InvertedBoundsAreSwapped) {
  AdaptationOptions o = enabled_opts();
  o.min_rate_bps = 8'000'000;
  o.max_rate_bps = 1'000'000;
  o.initial_rate_bps = 500'000;
  RateController c(Transport::kUdp, o);
  EXPECT_EQ(c.budget_bps(), 1'000'000u);  // clamped into [1M, 8M]
}

TEST(RateController, TcpHighBacklogDecreases) {
  RateController c(Transport::kTcp, enabled_opts());
  c.on_backlog_sample(64 * 1024, 1'000'000);  // over the 32 KiB high mark
  c.update(1'000'000);
  EXPECT_EQ(c.stats().decreases, 1u);
  EXPECT_EQ(c.budget_bps(), 1'400'000u);
}

TEST(RateController, TcpGrowingBacklogDecreasesEarly) {
  RateController c(Transport::kTcp, enabled_opts());
  // Rising through half the high mark: cut before the queue fills.
  const std::size_t samples[] = {0, 4'096, 8'192, 20'000};
  SimTime t = 1'000'000;
  for (std::size_t b : samples) {
    c.on_backlog_sample(b, t);
    c.update(t);
    t += 100'000;
  }
  EXPECT_EQ(c.stats().decreases, 1u);
}

TEST(RateController, TcpDrainedBacklogIncreases) {
  RateController c(Transport::kTcp, enabled_opts());
  SimTime t = 1'000'000;
  for (int i = 0; i < 4; ++i) {
    c.on_backlog_sample(0, t);
    c.update(t);
    t += 100'000;
  }
  EXPECT_EQ(c.stats().increases, 4u);
  EXPECT_EQ(c.budget_bps(), 2'400'000u);
}

TEST(RateController, TransportSelectsSignalPath) {
  RateController udp(Transport::kUdp, enabled_opts());
  udp.on_backlog_sample(1 << 20, 1'000'000);  // wrong signal: ignored
  udp.update(1'000'000);
  EXPECT_EQ(udp.stats().backlog_samples, 0u);
  EXPECT_EQ(udp.stats().decreases, 0u);

  RateController tcp(Transport::kTcp, enabled_opts());
  tcp.on_receiver_report(255, 90'000, 1'000'000);  // wrong signal: ignored
  tcp.update(1'000'000);
  EXPECT_EQ(tcp.stats().rr_consumed, 0u);
  EXPECT_EQ(tcp.stats().decreases, 0u);
}

TEST(RateController, DisabledControllerIsInert) {
  AdaptationOptions o;  // enabled = false
  RateController c(Transport::kUdp, o);
  const OperatingPoint before = c.current();
  c.on_receiver_report(255, 90'000, 1'000'000);
  c.update(1'000'000);
  EXPECT_EQ(c.current(), before);
  EXPECT_EQ(c.stats().rr_consumed, 0u);
  EXPECT_EQ(c.stats().decreases, 0u);
}

TEST(RateController, LadderIsMonotone) {
  const auto& ladder = RateController::default_ladder();
  ASSERT_GE(ladder.size(), 2u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_LT(ladder[i].dct_quality, ladder[i - 1].dct_quality);
    EXPECT_LT(ladder[i].ref_bps, ladder[i - 1].ref_bps);
  }
}

// Walk the budget down and assert the degradation schedule's promise:
// quality degrades first, fps only halves once the mid rungs are exhausted,
// and the bottom quality rung is never occupied at full frame rate.
TEST(RateController, DegradationOrdersQualityBeforeFpsCollapse) {
  AdaptationOptions o = enabled_opts();
  o.min_rate_bps = 50'000;
  o.initial_rate_bps = 20'000'000;
  RateController c(Transport::kUdp, o);
  int last_quality_step = c.current().quality_step;
  int last_fps_divisor = c.current().fps_divisor;
  EXPECT_EQ(last_quality_step, 0);  // 20 Mbit/s affords the top rung

  SimTime t = 1'000'000;
  while (c.budget_bps() > o.min_rate_bps) {
    c.on_receiver_report(200, 0, t);
    c.update(t);
    t += 1'000'000;  // past the holdoff every time
    const OperatingPoint& op = c.current();
    // Monotone degradation: neither axis ever improves on a falling budget.
    EXPECT_GE(op.quality_step, last_quality_step);
    EXPECT_GE(op.fps_divisor, last_fps_divisor);
    // Frame-rate sacrifice must not start before the q50 rung is reached.
    if (op.fps_divisor > 1) EXPECT_GE(op.quality_step, 2);
    // The bottom rung is only occupied once fps has been quartered.
    if (op.quality_step == 4) EXPECT_GE(op.fps_divisor, 4);
    last_quality_step = op.quality_step;
    last_fps_divisor = op.fps_divisor;
  }
  EXPECT_EQ(c.current().quality_step, 4);
  EXPECT_EQ(c.current().fps_divisor, 8);
}

TEST(RateController, MaxFpsDivisorOneDisablesFrameScaling) {
  AdaptationOptions o = enabled_opts();
  o.max_fps_divisor = 1;
  o.min_rate_bps = 50'000;
  o.initial_rate_bps = 50'000;  // far below every rung
  RateController c(Transport::kUdp, o);
  EXPECT_EQ(c.current().fps_divisor, 1);
  EXPECT_EQ(c.current().quality_step, 2);  // deepest divisor-1 candidate
}

TEST(RateController, PixelRateScaleShiftsTheLadder) {
  // A quarter-size view demands a quarter of the reference rate, so the
  // same budget affords a better rung.
  AdaptationOptions small = enabled_opts();
  small.initial_rate_bps = 1'600'000;
  small.pixel_rate_scale = 0.25;
  AdaptationOptions full = small;
  full.pixel_rate_scale = 1.0;
  RateController c_small(Transport::kUdp, small);
  RateController c_full(Transport::kUdp, full);
  EXPECT_LT(c_small.current().quality_step, c_full.current().quality_step);
  EXPECT_EQ(c_small.current().quality_step, 0);  // 6.3M * 0.25 <= 1.6M
}

TEST(RateController, IdenticalSignalSequencesAreBitDeterministic) {
  RateController a(Transport::kUdp, enabled_opts());
  RateController b(Transport::kUdp, enabled_opts());
  const struct {
    std::uint8_t lost;
    std::uint32_t jitter;
  } feed[] = {{0, 0}, {40, 0}, {0, 3'000}, {0, 0}, {8, 100},
              {0, 0}, {90, 0}, {0, 0},     {0, 0}, {0, 0}};
  SimTime t = 1'000'000;
  for (const auto& f : feed) {
    a.on_receiver_report(f.lost, f.jitter, t);
    b.on_receiver_report(f.lost, f.jitter, t);
    EXPECT_EQ(a.update(t), b.update(t));
    t += 700'000;
  }
  EXPECT_EQ(a.budget_bps(), b.budget_bps());
  EXPECT_EQ(a.stats().increases, b.stats().increases);
  EXPECT_EQ(a.stats().decreases, b.stats().decreases);
  EXPECT_EQ(a.stats().quality_changes, b.stats().quality_changes);
  EXPECT_EQ(a.stats().fps_changes, b.stats().fps_changes);
}

TEST(RateController, RecoversAfterCongestionClears) {
  RateController c(Transport::kUdp, enabled_opts());
  SimTime t = 1'000'000;
  for (int i = 0; i < 5; ++i) {  // collapse
    c.on_receiver_report(200, 0, t);
    c.update(t);
    t += 1'000'000;
  }
  const std::uint64_t floor_budget = c.budget_bps();
  ASSERT_LT(floor_budget, 1'000'000u);
  const int degraded_step = c.current().quality_step;
  ASSERT_GT(degraded_step, 2);
  for (int i = 0; i < 30; ++i) {  // clean air: probe back up
    c.on_receiver_report(0, 0, t);
    c.update(t);
    t += 1'000'000;
  }
  EXPECT_GT(c.budget_bps(), 2'000'000u);
  EXPECT_LT(c.current().quality_step, degraded_step);
  EXPECT_EQ(c.current().fps_divisor, 1);
}

}  // namespace
}  // namespace ads::rate
