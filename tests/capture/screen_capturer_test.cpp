#include "capture/screen_capturer.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

bool covers(const std::vector<Rect>& rects, Point p) {
  for (const Rect& r : rects) {
    if (r.contains(p)) return true;
  }
  return false;
}

struct CapturerTest : ::testing::Test {
  WindowManager wm;
};

TEST_F(CapturerTest, FirstCaptureReportsFullDamage) {
  ScreenCapturer cap(wm, 320, 240);
  wm.create({10, 10, 100, 100}, 1);
  auto result = cap.capture();
  std::int64_t area = 0;
  for (const Rect& r : result.damage) area += r.area();
  EXPECT_EQ(area, 320 * 240);
}

TEST_F(CapturerTest, StaticSceneProducesNoDamage) {
  ScreenCapturer cap(wm, 320, 240);
  wm.create({10, 10, 100, 100}, 1);  // no app attached: static grey fill
  cap.capture();
  auto result = cap.capture();
  EXPECT_TRUE(result.damage.empty());
}

TEST_F(CapturerTest, AppActivityProducesDamageInsideWindow) {
  const WindowId w = wm.create({50, 60, 128, 96}, 1);
  ScreenCapturer cap(wm, 320, 240);
  cap.attach(w, std::make_unique<PaintApp>(128, 96, 5));
  cap.capture();
  auto result = cap.capture();
  ASSERT_FALSE(result.damage.empty());
  // Damage is tile-granular, so rectangles may overhang the window by up to
  // one tile — but every damage rect must at least intersect it.
  const Rect window{50, 60, 128, 96};
  const Rect tile_padded{50 - 32, 60 - 32, 128 + 64, 96 + 64};
  for (const Rect& r : result.damage) {
    EXPECT_TRUE(overlaps(window, r)) << to_string(r);
    EXPECT_TRUE(tile_padded.contains(r)) << to_string(r);
  }
}

TEST_F(CapturerTest, SharedViewBlanksDesktopBackground) {
  const WindowId w = wm.create({50, 60, 64, 64}, 1);
  ScreenCapturer cap(wm, 320, 240);
  cap.attach(w, std::make_unique<SlideshowApp>(64, 64, 3));
  cap.capture();
  const Image& view = cap.last_frame();
  // Outside every window: black.
  EXPECT_EQ(view.at(0, 0), kBlack);
  EXPECT_EQ(view.at(300, 200), kBlack);
  // Inside the shared window: app content (slideshow never paints black).
  EXPECT_NE(view.at(60, 70), kBlack);
}

TEST_F(CapturerTest, NonSharedWindowsAreBlanked) {
  const WindowId shared = wm.create({0, 0, 100, 100}, 1);
  const WindowId secret = wm.create({150, 0, 100, 100}, 2);
  wm.share_group(1);
  ScreenCapturer cap(wm, 320, 240);
  cap.attach(shared, std::make_unique<SlideshowApp>(100, 100, 3));
  cap.attach(secret, std::make_unique<SlideshowApp>(100, 100, 4));
  cap.capture();
  const Image& view = cap.last_frame();
  EXPECT_NE(view.at(50, 50), kBlack);   // shared content visible
  EXPECT_EQ(view.at(200, 50), kBlack);  // secret window blanked
  // The AH user still sees the secret window on their own desktop.
  EXPECT_NE(cap.desktop().at(200, 50), Pixel(40, 44, 52, 255));
}

TEST_F(CapturerTest, NonSharedWindowOnTopBlanksOverlap) {
  const WindowId shared = wm.create({0, 0, 200, 200}, 1);
  const WindowId secret = wm.create({50, 50, 100, 100}, 2);  // on top
  wm.share_group(1);
  ScreenCapturer cap(wm, 320, 240);
  cap.attach(shared, std::make_unique<SlideshowApp>(200, 200, 3));
  cap.attach(secret, std::make_unique<SlideshowApp>(100, 100, 4));
  cap.capture();
  const Image& view = cap.last_frame();
  EXPECT_NE(view.at(10, 10), kBlack);    // uncovered shared area
  EXPECT_EQ(view.at(100, 100), kBlack);  // covered by secret window
}

TEST_F(CapturerTest, WindowMoveCausesDamageAtBothPositions) {
  const WindowId w = wm.create({0, 0, 64, 64}, 1);
  ScreenCapturer cap(wm, 320, 240);
  cap.attach(w, std::make_unique<SlideshowApp>(64, 64, 3));
  cap.capture();
  cap.capture();  // settle
  wm.move(w, {128, 128});
  auto result = cap.capture();
  EXPECT_TRUE(covers(result.damage, {10, 10}));     // old position cleared
  EXPECT_TRUE(covers(result.damage, {140, 140}));   // new position painted
}

TEST_F(CapturerTest, ForceFullDamageAfterPli) {
  const WindowId w = wm.create({0, 0, 64, 64}, 1);
  ScreenCapturer cap(wm, 320, 240);
  cap.attach(w, std::make_unique<SlideshowApp>(64, 64, 3));
  cap.capture();
  cap.force_full_damage();
  auto result = cap.capture();
  std::int64_t area = 0;
  for (const Rect& r : result.damage) area += r.area();
  EXPECT_EQ(area, 320 * 240);
}

TEST_F(CapturerTest, ResizeReshapesAppBackingStore) {
  const WindowId w = wm.create({0, 0, 64, 64}, 1);
  ScreenCapturer cap(wm, 320, 240);
  cap.attach(w, std::make_unique<TerminalApp>(64, 64, 3));
  cap.capture();
  wm.resize(w, 128, 96);
  cap.capture();
  EXPECT_EQ(cap.app(w)->content().width(), 128);
  EXPECT_EQ(cap.app(w)->content().height(), 96);
}

TEST_F(CapturerTest, TickCounterAdvances) {
  ScreenCapturer cap(wm, 64, 64);
  EXPECT_EQ(cap.ticks(), 0u);
  cap.capture();
  cap.capture();
  EXPECT_EQ(cap.ticks(), 2u);
}

}  // namespace
}  // namespace ads
