#include "capture/apps.hpp"

#include <gtest/gtest.h>

#include "image/damage.hpp"

namespace ads {
namespace {

std::int64_t changed_area(const Image& a, const Image& b) {
  std::int64_t total = 0;
  for (const Rect& r : diff_rects(a, b, 8)) total += r.area();
  return total;
}

TEST(Apps, FactoryKnowsAllWorkloads) {
  for (const char* name : {"terminal", "slideshow", "document", "video", "paint",
                           "webpage", "editing"}) {
    auto app = make_app(name, 64, 64, 1);
    ASSERT_NE(app, nullptr) << name;
    EXPECT_EQ(app->name(), name);
    EXPECT_EQ(app->content().width(), 64);
  }
  EXPECT_EQ(make_app("nope", 64, 64, 1), nullptr);
}

TEST(Apps, DeterministicForSameSeed) {
  for (const char* name : {"terminal", "slideshow", "document", "video", "paint",
                           "webpage", "editing"}) {
    auto a = make_app(name, 96, 96, 42);
    auto b = make_app(name, 96, 96, 42);
    for (std::uint64_t t = 0; t < 10; ++t) {
      a->tick(t);
      b->tick(t);
    }
    EXPECT_EQ(a->content(), b->content()) << name;
  }
}

TEST(Apps, TerminalProducesLocalisedUpdates) {
  TerminalApp app(320, 240, 7);
  Image before = app.content();
  app.tick(0);
  const std::int64_t area = changed_area(before, app.content());
  EXPECT_GT(area, 0);
  // A few characters, not the whole window.
  EXPECT_LT(area, 320 * 240 / 4);
}

TEST(Apps, TerminalEventuallyScrolls) {
  TerminalApp app(160, 64, 3, /*chars_per_tick=*/40);
  Image before = app.content();
  for (std::uint64_t t = 0; t < 50; ++t) app.tick(t);
  // After many lines the bottom row is active and content scrolled.
  EXPECT_NE(app.content(), before);
}

TEST(Apps, SlideshowStaticBetweenTransitions) {
  SlideshowApp app(200, 150, 5, /*ticks_per_slide=*/10);
  Image initial = app.content();
  for (std::uint64_t t = 1; t < 10; ++t) {
    app.tick(t);
    EXPECT_EQ(app.content(), initial) << "changed at tick " << t;
  }
  app.tick(10);
  EXPECT_NE(app.content(), initial);
}

TEST(Apps, DocumentScrollsByConfiguredAmount) {
  DocumentApp app(128, 256, 9, /*pixels_per_tick=*/16);
  const Image before = app.content();
  app.tick(0);
  const Image after = app.content();
  // Rows 16.. of `before` should reappear at rows 0.. of `after`.
  EXPECT_EQ(before.crop({0, 16, 128, 240}), after.crop({0, 0, 128, 240}));
  EXPECT_EQ(app.scroll_per_tick(), 16);
}

TEST(Apps, VideoChangesEverywhereEveryTick) {
  VideoApp app(64, 48, 11);
  app.tick(0);
  Image before = app.content();
  app.tick(1);
  const std::int64_t area = changed_area(before, app.content());
  EXPECT_GT(area, 64 * 48 * 8 / 10);  // nearly all pixels
}

TEST(Apps, PaintDrawsSparseStrokes) {
  PaintApp app(200, 200, 13);
  Image before = app.content();
  app.tick(0);
  const std::int64_t area = changed_area(before, app.content());
  EXPECT_GT(area, 0);
  EXPECT_LT(area, 200 * 200 / 8);
}

TEST(Apps, WebPageLoadsInTileBursts) {
  WebPageApp app(320, 240, 7, /*tiles_per_tick=*/2, /*idle_ticks=*/3);
  // Loading phase: each tick damages a bounded, non-zero area (a couple of
  // tiles), never the whole page.
  Image before = app.content();
  app.tick(0);
  const std::int64_t area = changed_area(before, app.content());
  EXPECT_GT(area, 0);
  EXPECT_LE(area, 2 * 96 * 64 + 320);
  // Run long enough to load every tile, idle, and navigate again: the
  // second navigation repaints a large part of the window at once.
  const std::uint64_t before_navs = app.navigations();
  for (std::uint64_t t = 1; t < 60; ++t) app.tick(t);
  EXPECT_GT(app.navigations(), before_navs);
}

TEST(Apps, EditingRotatesTheFloorBetweenPresenters) {
  EditingApp app(300, 120, 5, /*presenters=*/3, /*ticks_per_turn=*/4);
  EXPECT_EQ(app.active_presenter(), 0);
  EXPECT_EQ(app.presenters(), 3);

  std::uint64_t t = 0;
  auto run_turn = [&] { for (int i = 0; i < 4; ++i) app.tick(t++); };
  run_turn();
  // Crossing the turn boundary hands the floor to the next presenter.
  app.tick(t++);
  EXPECT_EQ(app.active_presenter(), 1);
  EXPECT_EQ(app.handoffs(), 1u);

  // Edits while presenter 1 holds the floor stay inside its strip
  // (borders aside, the other strips are untouched).
  const Image before = app.content();
  app.tick(t++);
  Region changed;
  for (const Rect& r : diff_rects(before, app.content(), 8)) changed.add(r);
  // Presenter 1's strip, inflated by the diff granularity.
  const Rect strip1{100 - 8, 0, 100 + 16, 120};
  for (const Rect& r : changed.rects()) {
    EXPECT_TRUE(strip1.contains(r)) << r.left << "," << r.top;
  }

  // A full rotation returns to presenter 0.
  for (int turn = 0; turn < 2; ++turn) { run_turn(); }
  app.tick(t++);
  EXPECT_EQ(app.active_presenter(), 0);
  EXPECT_GE(app.handoffs(), 3u);
}

TEST(Apps, ResizePreservesExistingContent) {
  PaintApp app(100, 100, 17);
  app.tick(0);
  const Image before = app.content();
  app.resize(150, 120);
  EXPECT_EQ(app.content().width(), 150);
  EXPECT_EQ(app.content().height(), 120);
  EXPECT_EQ(app.content().crop({0, 0, 100, 100}), before);
}

}  // namespace
}  // namespace ads
