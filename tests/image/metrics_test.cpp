#include "image/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ads {
namespace {

TEST(Metrics, IdenticalImagesInfinitePsnr) {
  Image a(10, 10, kWhite);
  EXPECT_EQ(mse(a, a), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
  EXPECT_EQ(diff_pixel_count(a, a), 0);
}

TEST(Metrics, MaximalDifference) {
  Image a(10, 10, kBlack);
  Image b(10, 10, kWhite);
  EXPECT_DOUBLE_EQ(mse(a, b), 255.0 * 255.0);
  EXPECT_NEAR(psnr(a, b), 0.0, 1e-9);
  EXPECT_EQ(diff_pixel_count(a, b), 100);
}

TEST(Metrics, SinglePixelDelta) {
  Image a(10, 10, kBlack);
  Image b = a;
  b.set(3, 3, Pixel{30, 0, 0, 255});
  // One channel of one pixel differs by 30 over 100 pixels * 3 channels.
  EXPECT_NEAR(mse(a, b), 30.0 * 30.0 / 300.0, 1e-9);
  EXPECT_EQ(diff_pixel_count(a, b), 1);
}

TEST(Metrics, AlphaIsIgnored) {
  Image a(4, 4, Pixel{10, 20, 30, 255});
  Image b(4, 4, Pixel{10, 20, 30, 0});
  EXPECT_EQ(mse(a, b), 0.0);
  EXPECT_EQ(diff_pixel_count(a, b), 0);
}

TEST(Metrics, PsnrMonotoneInError) {
  Image ref(8, 8, Pixel{100, 100, 100, 255});
  Image small_err(8, 8, Pixel{102, 100, 100, 255});
  Image big_err(8, 8, Pixel{130, 100, 100, 255});
  EXPECT_GT(psnr(ref, small_err), psnr(ref, big_err));
}

}  // namespace
}  // namespace ads
