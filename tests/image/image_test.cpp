#include "image/image.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, kWhite);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(0, 0), kWhite);
  img.fill(kBlack);
  EXPECT_EQ(img.at(3, 2), kBlack);
}

TEST(Image, FillRectClipsToBounds) {
  Image img(10, 10, kBlack);
  img.fill_rect({8, 8, 10, 10}, kWhite);
  EXPECT_EQ(img.at(9, 9), kWhite);
  EXPECT_EQ(img.at(7, 7), kBlack);
}

TEST(Image, BlitCopiesSubRect) {
  Image src(4, 4, kBlack);
  src.set(1, 1, kWhite);
  Image dst(10, 10, kBlack);
  dst.blit(src, {0, 0, 4, 4}, {5, 5});
  EXPECT_EQ(dst.at(6, 6), kWhite);
  EXPECT_EQ(dst.at(5, 5), kBlack);
}

TEST(Image, BlitClipsAtDestinationEdge) {
  Image src(4, 4, kWhite);
  Image dst(10, 10, kBlack);
  dst.blit(src, {0, 0, 4, 4}, {8, 8});
  EXPECT_EQ(dst.at(9, 9), kWhite);
  // No out-of-bounds write happened; interior untouched.
  EXPECT_EQ(dst.at(7, 7), kBlack);
}

TEST(Image, MoveRectNonOverlapping) {
  Image img(10, 10, kBlack);
  img.fill_rect({0, 0, 2, 2}, kWhite);
  img.move_rect({0, 0, 2, 2}, {5, 5});
  EXPECT_EQ(img.at(5, 5), kWhite);
  EXPECT_EQ(img.at(6, 6), kWhite);
  // Source is not cleared by MoveRectangle semantics (a copy).
  EXPECT_EQ(img.at(0, 0), kWhite);
}

TEST(Image, MoveRectOverlappingDownward) {
  // Scroll-down by 1 row: rows must be copied bottom-up to survive overlap.
  Image img(1, 5, kBlack);
  for (int y = 0; y < 5; ++y) {
    img.set(0, y, Pixel{static_cast<std::uint8_t>(y), 0, 0, 255});
  }
  img.move_rect({0, 0, 1, 4}, {0, 1});
  for (int y = 1; y < 5; ++y) {
    EXPECT_EQ(img.at(0, y).r, y - 1) << "row " << y;
  }
  EXPECT_EQ(img.at(0, 0).r, 0);  // original top row untouched
}

TEST(Image, MoveRectOverlappingUpward) {
  // Scroll-up by 2: typical document scroll; copy must go top-down.
  Image img(1, 6, kBlack);
  for (int y = 0; y < 6; ++y) {
    img.set(0, y, Pixel{static_cast<std::uint8_t>(10 * y), 0, 0, 255});
  }
  img.move_rect({0, 2, 1, 4}, {0, 0});
  for (int y = 0; y < 4; ++y) {
    EXPECT_EQ(img.at(0, y).r, 10 * (y + 2)) << "row " << y;
  }
}

TEST(Image, MoveRectHorizontalOverlap) {
  Image img(6, 1, kBlack);
  for (int x = 0; x < 6; ++x) {
    img.set(x, 0, Pixel{static_cast<std::uint8_t>(x + 1), 0, 0, 255});
  }
  img.move_rect({0, 0, 4, 1}, {2, 0});
  EXPECT_EQ(img.at(2, 0).r, 1);
  EXPECT_EQ(img.at(3, 0).r, 2);
  EXPECT_EQ(img.at(4, 0).r, 3);
  EXPECT_EQ(img.at(5, 0).r, 4);
}

TEST(Image, CropExtractsRegion) {
  Image img(10, 10, kBlack);
  img.fill_rect({2, 2, 3, 3}, kWhite);
  Image sub = img.crop({2, 2, 3, 3});
  EXPECT_EQ(sub.width(), 3);
  EXPECT_EQ(sub.height(), 3);
  EXPECT_EQ(sub.at(0, 0), kWhite);
}

TEST(Image, CropClipsToBounds) {
  Image img(10, 10, kWhite);
  Image sub = img.crop({8, 8, 10, 10});
  EXPECT_EQ(sub.width(), 2);
  EXPECT_EQ(sub.height(), 2);
}

TEST(Image, EqualityIsPixelwise) {
  Image a(3, 3, kBlack);
  Image b(3, 3, kBlack);
  EXPECT_EQ(a, b);
  b.set(1, 1, kWhite);
  EXPECT_NE(a, b);
}

TEST(Image, EmptyImage) {
  Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.bounds(), (Rect{0, 0, 0, 0}));
}

}  // namespace
}  // namespace ads
