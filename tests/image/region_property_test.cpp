// Property-based tests of the Region algebra, the foundation for damage
// accumulation and window visibility. Verified against a brute-force
// bitmap model over randomised operation sequences.
#include <gtest/gtest.h>

#include <vector>

#include "image/geometry.hpp"
#include "util/prng.hpp"

namespace ads {
namespace {

constexpr std::int64_t kGrid = 64;

/// Brute-force reference: a boolean grid.
struct GridModel {
  std::vector<bool> cells = std::vector<bool>(kGrid * kGrid, false);

  void add(const Rect& r) { paint(r, true); }
  void subtract(const Rect& r) { paint(r, false); }
  void paint(const Rect& r, bool value) {
    const Rect c = intersect(r, {0, 0, kGrid, kGrid});
    for (std::int64_t y = c.top; y < c.bottom(); ++y) {
      for (std::int64_t x = c.left; x < c.right(); ++x) {
        cells[static_cast<std::size_t>(y * kGrid + x)] = value;
      }
    }
  }
  std::int64_t area() const {
    std::int64_t n = 0;
    for (bool b : cells) n += b ? 1 : 0;
    return n;
  }
  bool at(std::int64_t x, std::int64_t y) const {
    return cells[static_cast<std::size_t>(y * kGrid + x)];
  }
};

Rect random_rect(Prng& rng) {
  const std::int64_t w = rng.range(0, 20);
  const std::int64_t h = rng.range(0, 20);
  return Rect{rng.range(0, kGrid - 1), rng.range(0, kGrid - 1), w, h};
}

class RegionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionProperty, MatchesBitmapModelUnderRandomOps) {
  Prng rng(GetParam());
  Region region;
  GridModel model;
  for (int op = 0; op < 60; ++op) {
    const Rect r = intersect(random_rect(rng), {0, 0, kGrid, kGrid});
    if (rng.chance(0.65)) {
      region.add(r);
      model.add(r);
    } else {
      region.subtract_rect(r);
      model.subtract(r);
    }
    if (rng.chance(0.3)) region.simplify();

    ASSERT_EQ(region.area(), model.area()) << "op " << op;
    // Disjointness invariant.
    const auto& rects = region.rects();
    for (std::size_t i = 0; i < rects.size(); ++i) {
      for (std::size_t j = i + 1; j < rects.size(); ++j) {
        ASSERT_TRUE(intersect(rects[i], rects[j]).empty()) << "op " << op;
      }
    }
  }
  // Full membership check at the end.
  for (std::int64_t y = 0; y < kGrid; ++y) {
    for (std::int64_t x = 0; x < kGrid; ++x) {
      ASSERT_EQ(region.contains(Point{x, y}), model.at(x, y)) << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(SubtractProperty, PartitionInvariant) {
  // subtract(a,b) together with a∩b must exactly partition a.
  Prng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    const Rect a = random_rect(rng);
    const Rect b = random_rect(rng);
    const Rect inter = intersect(a, b);
    auto parts = subtract(a, b);
    std::int64_t area = inter.area();
    for (const Rect& p : parts) {
      area += p.area();
      ASSERT_TRUE(a.contains(p));
      ASSERT_TRUE(intersect(p, b).empty());
    }
    ASSERT_EQ(area, std::max<std::int64_t>(0, a.area()));
  }
}

TEST(BoundingUnionProperty, ContainsBothInputs) {
  Prng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    const Rect a = random_rect(rng);
    const Rect b = random_rect(rng);
    const Rect u = bounding_union(a, b);
    if (!a.empty()) {
      ASSERT_TRUE(u.contains(a));
    }
    if (!b.empty()) {
      ASSERT_TRUE(u.contains(b));
    }
  }
}

}  // namespace
}  // namespace ads
