#include "image/geometry.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(Rect, BasicAccessors) {
  const Rect r{10, 20, 30, 40};
  EXPECT_EQ(r.right(), 40);
  EXPECT_EQ(r.bottom(), 60);
  EXPECT_EQ(r.area(), 1200);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_TRUE((Rect{0, 0, 10, 0}).empty());
}

TEST(Rect, ContainsPoint) {
  const Rect r{10, 10, 5, 5};
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_TRUE(r.contains(Point{14, 14}));
  EXPECT_FALSE(r.contains(Point{15, 14}));  // right edge exclusive
  EXPECT_FALSE(r.contains(Point{9, 10}));
}

TEST(Rect, ContainsRect) {
  const Rect outer{0, 0, 100, 100};
  EXPECT_TRUE(outer.contains(Rect{10, 10, 20, 20}));
  EXPECT_TRUE(outer.contains(Rect{0, 0, 100, 100}));
  EXPECT_FALSE(outer.contains(Rect{90, 90, 20, 20}));
  EXPECT_TRUE(outer.contains(Rect{}));  // empty is contained anywhere
}

TEST(Rect, Translated) {
  EXPECT_EQ((Rect{10, 20, 5, 5}).translated(-10, 5), (Rect{0, 25, 5, 5}));
}

TEST(Intersect, OverlappingAndDisjoint) {
  EXPECT_EQ(intersect({0, 0, 10, 10}, {5, 5, 10, 10}), (Rect{5, 5, 5, 5}));
  EXPECT_TRUE(intersect({0, 0, 10, 10}, {10, 0, 5, 5}).empty());  // touching edges
  EXPECT_TRUE(intersect({0, 0, 10, 10}, {20, 20, 5, 5}).empty());
}

TEST(BoundingUnion, CoversBoth) {
  EXPECT_EQ(bounding_union({0, 0, 10, 10}, {20, 20, 5, 5}), (Rect{0, 0, 25, 25}));
  EXPECT_EQ(bounding_union({}, {1, 2, 3, 4}), (Rect{1, 2, 3, 4}));
  EXPECT_EQ(bounding_union({1, 2, 3, 4}, {}), (Rect{1, 2, 3, 4}));
}

TEST(Subtract, DisjointReturnsOriginal) {
  auto parts = subtract({0, 0, 10, 10}, {20, 20, 5, 5});
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (Rect{0, 0, 10, 10}));
}

TEST(Subtract, FullyCoveredReturnsNothing) {
  EXPECT_TRUE(subtract({5, 5, 5, 5}, {0, 0, 100, 100}).empty());
}

TEST(Subtract, CenterHoleProducesFourParts) {
  auto parts = subtract({0, 0, 30, 30}, {10, 10, 10, 10});
  ASSERT_EQ(parts.size(), 4u);
  std::int64_t area = 0;
  for (const auto& p : parts) {
    area += p.area();
    EXPECT_TRUE(intersect(p, {10, 10, 10, 10}).empty());
  }
  EXPECT_EQ(area, 30 * 30 - 10 * 10);
}

TEST(Subtract, PartsAreDisjoint) {
  auto parts = subtract({0, 0, 30, 30}, {15, -5, 10, 50});
  std::int64_t area = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    area += parts[i].area();
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      EXPECT_TRUE(intersect(parts[i], parts[j]).empty());
    }
  }
  EXPECT_EQ(area, 30 * 30 - 10 * 30);
}

TEST(Region, AddKeepsDisjointArea) {
  Region region;
  region.add({0, 0, 10, 10});
  region.add({5, 5, 10, 10});  // overlaps by 5x5
  EXPECT_EQ(region.area(), 100 + 100 - 25);
}

TEST(Region, AddDuplicateIsNoop) {
  Region region;
  region.add({0, 0, 10, 10});
  region.add({0, 0, 10, 10});
  EXPECT_EQ(region.area(), 100);
}

TEST(Region, SubtractRect) {
  Region region(Rect{0, 0, 20, 10});
  region.subtract_rect({0, 0, 10, 10});
  EXPECT_EQ(region.area(), 100);
  EXPECT_FALSE(region.contains(Point{5, 5}));
  EXPECT_TRUE(region.contains(Point{15, 5}));
}

TEST(Region, BoundsAndContains) {
  Region region;
  region.add({0, 0, 5, 5});
  region.add({50, 50, 5, 5});
  EXPECT_EQ(region.bounds(), (Rect{0, 0, 55, 55}));
  EXPECT_TRUE(region.contains(Point{2, 2}));
  EXPECT_FALSE(region.contains(Point{20, 20}));
}

TEST(Region, SimplifyMergesAdjacentTiles) {
  Region region;
  // Four tiles forming one 64x32 band.
  region.add({0, 0, 32, 32});
  region.add({32, 0, 32, 32});
  region.add({0, 32, 32, 32});
  region.add({32, 32, 32, 32});
  region.simplify();
  ASSERT_EQ(region.rects().size(), 1u);
  EXPECT_EQ(region.rects()[0], (Rect{0, 0, 64, 64}));
}

TEST(Region, EmptyRectIgnored) {
  Region region;
  region.add({});
  EXPECT_TRUE(region.empty());
  EXPECT_EQ(region.area(), 0);
}

TEST(ToString, Format) { EXPECT_EQ(to_string(Rect{1, 2, 3, 4}), "[1,2 3x4]"); }

}  // namespace
}  // namespace ads
