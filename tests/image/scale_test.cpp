#include "image/scale.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

Image checker(std::int64_t w, std::int64_t h, std::int64_t cell) {
  Image img(w, h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const bool on = ((x / cell) + (y / cell)) % 2 == 0;
      img.set(x, y, on ? kWhite : kBlack);
    }
  }
  return img;
}

TEST(Scale, IdentityReturnsEqualImage) {
  const Image img = checker(32, 24, 4);
  EXPECT_EQ(scale_image(img, 32, 24), img);
}

TEST(Scale, DegenerateTargetsEmpty) {
  const Image img = checker(8, 8, 2);
  EXPECT_TRUE(scale_image(img, 0, 10).empty());
  EXPECT_TRUE(scale_image(img, 10, 0).empty());
  EXPECT_TRUE(scale_image(Image{}, 10, 10).empty());
}

TEST(Scale, DownscaleDimensions) {
  const Image img = checker(100, 80, 10);
  const Image half = scale_image(img, 50, 40);
  EXPECT_EQ(half.width(), 50);
  EXPECT_EQ(half.height(), 40);
}

TEST(Scale, FlatColourSurvivesAnyScale) {
  const Image img(37, 23, Pixel{90, 40, 200, 255});
  for (auto filter : {ScaleFilter::kNearest, ScaleFilter::kBilinear}) {
    const Image scaled = scale_image(img, 91, 11, filter);
    for (const Pixel& p : scaled.pixels()) {
      EXPECT_EQ(p, (Pixel{90, 40, 200, 255}));
    }
  }
}

TEST(Scale, NearestPreservesExactPalette) {
  const Image img = checker(64, 64, 8);
  const Image scaled = scale_image(img, 17, 29, ScaleFilter::kNearest);
  for (const Pixel& p : scaled.pixels()) {
    EXPECT_TRUE(p == kBlack || p == kWhite);
  }
}

TEST(Scale, BilinearInterpolatesBetweenNeighbours) {
  // Two-pixel gradient: the midpoint of a 3-wide upscale must be between.
  Image img(2, 1);
  img.set(0, 0, Pixel{0, 0, 0, 255});
  img.set(1, 0, Pixel{200, 200, 200, 255});
  const Image scaled = scale_image(img, 3, 1, ScaleFilter::kBilinear);
  EXPECT_EQ(scaled.at(0, 0).r, 0);
  EXPECT_EQ(scaled.at(2, 0).r, 200);
  EXPECT_NEAR(scaled.at(1, 0).r, 100, 2);
}

TEST(Scale, UpscaleCornersExact) {
  Image img(2, 2);
  img.set(0, 0, Pixel{10, 0, 0, 255});
  img.set(1, 0, Pixel{20, 0, 0, 255});
  img.set(0, 1, Pixel{30, 0, 0, 255});
  img.set(1, 1, Pixel{40, 0, 0, 255});
  const Image up = scale_image(img, 9, 9, ScaleFilter::kBilinear);
  EXPECT_EQ(up.at(0, 0).r, 10);
  EXPECT_EQ(up.at(8, 0).r, 20);
  EXPECT_EQ(up.at(0, 8).r, 30);
  EXPECT_EQ(up.at(8, 8).r, 40);
}

TEST(Scale, OnePixelTarget) {
  const Image img = checker(16, 16, 4);
  const Image dot = scale_image(img, 1, 1);
  EXPECT_EQ(dot.width(), 1);
  EXPECT_EQ(dot.height(), 1);
}

}  // namespace
}  // namespace ads
