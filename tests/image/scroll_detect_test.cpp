#include "image/scroll_detect.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace ads {
namespace {

/// Paint distinctive horizontal stripes so every row hash is unique.
Image striped(std::int64_t w, std::int64_t h, std::uint64_t seed) {
  Image img(w, h);
  Prng rng(seed);
  for (std::int64_t y = 0; y < h; ++y) {
    const Pixel p{static_cast<std::uint8_t>(rng.next_u32()),
                  static_cast<std::uint8_t>(rng.next_u32()),
                  static_cast<std::uint8_t>(rng.next_u32()), 255};
    img.fill_rect({0, y, w, 1}, p);
  }
  return img;
}

TEST(ScrollDetect, FindsUpwardScroll) {
  const Image before = striped(64, 100, 42);
  Image after = before;
  after.move_rect({0, 10, 64, 90}, {0, 0});  // content moves up 10
  auto match = detect_scroll(before, after, {0, 0, 64, 100});
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->dy, -10);
  EXPECT_GE(match->confidence, 0.6);
}

TEST(ScrollDetect, FindsDownwardScroll) {
  const Image before = striped(64, 100, 7);
  Image after = before;
  after.move_rect({0, 0, 64, 90}, {0, 10});
  auto match = detect_scroll(before, after, {0, 0, 64, 100});
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->dy, 10);
}

TEST(ScrollDetect, SourceRectMapsOldToNew) {
  const Image before = striped(32, 80, 3);
  Image after = before;
  after.move_rect({0, 8, 32, 72}, {0, 0});
  auto match = detect_scroll(before, after, {0, 0, 32, 80});
  ASSERT_TRUE(match.has_value());
  // Applying the move to `before` must reproduce the moved band of `after`.
  Image replay = before;
  replay.move_rect(match->source, {match->source.left, match->source.top + match->dy});
  const Rect moved{match->source.left, match->source.top + match->dy,
                   match->source.width, match->source.height};
  EXPECT_EQ(replay.crop(moved), after.crop(moved));
}

TEST(ScrollDetect, NoMatchOnUnrelatedFrames) {
  const Image before = striped(64, 100, 1);
  const Image after = striped(64, 100, 2);
  EXPECT_FALSE(detect_scroll(before, after, {0, 0, 64, 100}).has_value());
}

TEST(ScrollDetect, NoMatchOnIdenticalFrames) {
  const Image img = striped(64, 100, 5);
  EXPECT_FALSE(detect_scroll(img, img, {0, 0, 64, 100}).has_value());
}

TEST(ScrollDetect, RespectsMaxDisplacement) {
  const Image before = striped(64, 300, 9);
  Image after = before;
  after.move_rect({0, 200, 64, 100}, {0, 0});  // dy = -200
  ScrollDetectorOptions opts;
  opts.max_displacement = 100;
  EXPECT_FALSE(detect_scroll(before, after, {0, 0, 64, 300}, opts).has_value());
  opts.max_displacement = 250;
  auto match = detect_scroll(before, after, {0, 0, 64, 300}, opts);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->dy, -200);
}

TEST(ScrollDetect, TooSmallAreaRejected) {
  const Image before = striped(64, 10, 11);
  Image after = before;
  after.move_rect({0, 2, 64, 8}, {0, 0});
  ScrollDetectorOptions opts;
  opts.min_rows = 16;
  EXPECT_FALSE(detect_scroll(before, after, {0, 0, 64, 10}, opts).has_value());
}

TEST(ScrollDetect, SubRegionScrollDetectedWithinArea) {
  // Only the middle band scrolls (e.g. a document window inside a desktop).
  Image before(200, 200, kBlack);
  const Image content = striped(100, 100, 21);
  before.blit(content, {0, 0, 100, 100}, {50, 50});
  Image after = before;
  after.move_rect({50, 60, 100, 90}, {50, 50});
  auto match = detect_scroll(before, after, {50, 50, 100, 100});
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->dy, -10);
}

class ScrollAmounts : public ::testing::TestWithParam<int> {};

TEST_P(ScrollAmounts, DetectsExactDisplacement) {
  const int dy = GetParam();
  const Image before = striped(48, 256, 33);
  Image after = before;
  if (dy > 0) {
    after.move_rect({0, 0, 48, 256 - dy}, {0, dy});
  } else {
    after.move_rect({0, -dy, 48, 256 + dy}, {0, 0});
  }
  auto match = detect_scroll(before, after, {0, 0, 48, 256});
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->dy, dy);
}

INSTANTIATE_TEST_SUITE_P(Displacements, ScrollAmounts,
                         ::testing::Values(-64, -17, -3, -1, 1, 2, 5, 16, 50, 100));

}  // namespace
}  // namespace ads
