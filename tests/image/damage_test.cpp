#include "image/damage.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

// TU-wide allocation counter so tests can assert the steady-state
// DamageTracker path is allocation-free (the tracker runs every frame tick;
// a per-tick allocation would be a regression the compiler can't catch).
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace ads {
namespace {

std::int64_t total_area(const std::vector<Rect>& rects) {
  std::int64_t a = 0;
  for (const auto& r : rects) a += r.area();
  return a;
}

bool covers(const std::vector<Rect>& rects, Point p) {
  for (const auto& r : rects) {
    if (r.contains(p)) return true;
  }
  return false;
}

TEST(DamageTracker, FirstFrameIsFullyDamaged) {
  DamageTracker tracker(32);
  Image frame(100, 80, kBlack);
  auto damage = tracker.update(frame);
  EXPECT_EQ(total_area(damage), 100 * 80);
}

TEST(DamageTracker, UnchangedFrameReportsNothing) {
  DamageTracker tracker(32);
  Image frame(100, 80, kBlack);
  tracker.update(frame);
  EXPECT_TRUE(tracker.update(frame).empty());
}

TEST(DamageTracker, SinglePixelChangeFoundWithinOneTile) {
  DamageTracker tracker(32);
  Image frame(128, 128, kBlack);
  tracker.update(frame);
  frame.set(70, 40, kWhite);
  auto damage = tracker.update(frame);
  ASSERT_FALSE(damage.empty());
  EXPECT_TRUE(covers(damage, {70, 40}));
  // Damage granularity is one tile.
  EXPECT_LE(total_area(damage), 32 * 32);
}

TEST(DamageTracker, DamageCoversAllChanges) {
  DamageTracker tracker(16);
  Image frame(200, 200, kBlack);
  tracker.update(frame);
  frame.fill_rect({10, 10, 50, 5}, kWhite);
  frame.fill_rect({150, 180, 30, 10}, kWhite);
  auto damage = tracker.update(frame);
  EXPECT_TRUE(covers(damage, {10, 10}));
  EXPECT_TRUE(covers(damage, {59, 14}));
  EXPECT_TRUE(covers(damage, {150, 180}));
  EXPECT_TRUE(covers(damage, {179, 189}));
}

TEST(DamageTracker, ResizeTriggersFullDamage) {
  DamageTracker tracker(32);
  tracker.update(Image(100, 100, kBlack));
  auto damage = tracker.update(Image(200, 100, kBlack));
  EXPECT_EQ(total_area(damage), 200 * 100);
}

TEST(DamageTracker, ResetForcesFullDamage) {
  DamageTracker tracker(32);
  Image frame(64, 64, kBlack);
  tracker.update(frame);
  tracker.reset();
  EXPECT_EQ(total_area(tracker.update(frame)), 64 * 64);
}

TEST(DamageTracker, EdgeTilesClippedToFrame) {
  // 100 is not a multiple of 32; edge tiles must not extend past bounds.
  DamageTracker tracker(32);
  Image frame(100, 100, kBlack);
  tracker.update(frame);
  frame.set(99, 99, kWhite);
  auto damage = tracker.update(frame);
  ASSERT_FALSE(damage.empty());
  for (const auto& r : damage) {
    EXPECT_LE(r.right(), 100);
    EXPECT_LE(r.bottom(), 100);
  }
}

TEST(DamageTracker, AdjacentDirtyTilesMerge) {
  DamageTracker tracker(32);
  Image frame(128, 128, kBlack);
  tracker.update(frame);
  frame.fill_rect({0, 0, 128, 32}, kWhite);  // full top band: 4 tiles
  auto damage = tracker.update(frame);
  ASSERT_EQ(damage.size(), 1u);
  EXPECT_EQ(damage[0], (Rect{0, 0, 128, 32}));
}

TEST(DamageTracker, UnchangedFrameAllocatesNothing) {
  DamageTracker tracker(32);
  Image frame(256, 192, kBlack);
  tracker.update(frame);
  tracker.update(frame);  // warm: return-value vector machinery settled

  const std::uint64_t before = g_allocations.load();
  const auto damage = tracker.update(frame);
  const std::uint64_t after = g_allocations.load();
  EXPECT_TRUE(damage.empty());
  EXPECT_EQ(after - before, 0u) << "steady-state no-change update allocated";
}

TEST(DamageTracker, ShrinkingResizeReusesHashStorage) {
  DamageTracker tracker(32);
  tracker.update(Image(256, 256, kBlack));  // 8x8 hash grid

  // Shrinking fits in the existing grid allocation: the resize fast path
  // must rebuild hashes in place (assign) rather than reallocate.
  Image smaller(128, 128, kWhite);
  const std::uint64_t before = g_allocations.load();
  const auto damage = tracker.update(smaller);
  const std::uint64_t after = g_allocations.load();
  ASSERT_EQ(damage.size(), 1u);
  EXPECT_EQ(damage[0], smaller.bounds());
  // Only the returned one-rect vector may allocate.
  EXPECT_LE(after - before, 1u);

  // And the rebuilt grid is immediately consistent: no phantom damage.
  EXPECT_TRUE(tracker.update(smaller).empty());
}

TEST(DamageTracker, ResizeReportsFullDamageNotDiff) {
  DamageTracker tracker(16);
  Image a(100, 100, kBlack);
  tracker.update(a);
  // Same pixel content, different geometry: still full damage.
  Image b(100, 120, kBlack);
  auto damage = tracker.update(b);
  ASSERT_EQ(damage.size(), 1u);
  EXPECT_EQ(damage[0], b.bounds());
}

TEST(DamageTracker, EmptyFrameReportsNoDamage) {
  DamageTracker tracker(32);
  EXPECT_TRUE(tracker.update(Image()).empty());
}

class DamageTileSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DamageTileSizes, DetectsChangeAtAnyGranularity) {
  DamageTracker tracker(GetParam());
  Image frame(130, 70, kBlack);
  tracker.update(frame);
  frame.fill_rect({40, 30, 20, 10}, kWhite);
  auto damage = tracker.update(frame);
  EXPECT_TRUE(covers(damage, {40, 30}));
  EXPECT_TRUE(covers(damage, {59, 39}));
  // Everything reported must lie within bounds.
  for (const auto& r : damage) {
    EXPECT_TRUE(frame.bounds().contains(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, DamageTileSizes,
                         ::testing::Values(8, 16, 32, 33, 64, 128));

}  // namespace
}  // namespace ads
