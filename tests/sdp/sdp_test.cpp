#include "sdp/sdp.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(Sdp, ParsesSection103Example) {
  // The draft's §10.3 SDP, verbatim (including its quirks: the pt-less
  // fmtp line and the rtpmap:99 on the hip m-line's PT 100 entry).
  const std::string text =
      "v=0\r\n"
      "o=- 0 0 IN IP4 127.0.0.1\r\n"
      "s=-\r\n"
      "t=0 0\r\n"
      "m=application 50000 TCP/BFCP *\r\n"
      "a=floorid:0 m-stream:10\r\n"
      "m=application 6000 RTP/AVP 99\r\n"
      "a=rtpmap:99 remoting/90000\r\n"
      "a=fmtp: retransmissions=yes\r\n"
      "m=application 6000 TCP/RTP/AVP 99\r\n"
      "a=rtpmap:99 remoting/90000\r\n"
      "m=application 6006 TCP/RTP/AVP 100\r\n"
      "a=rtpmap:100 hip/90000\r\n"
      "a=label:10\r\n";

  auto sd = SessionDescription::parse(text);
  ASSERT_TRUE(sd.ok());
  ASSERT_EQ(sd->media.size(), 4u);

  EXPECT_EQ(sd->media[0].protocol, "TCP/BFCP");
  EXPECT_EQ(sd->media[0].port, 50000);
  EXPECT_EQ(sd->media[0].formats, (std::vector<std::string>{"*"}));
  EXPECT_EQ(sd->media[0].attribute("floorid"), "0 m-stream:10");

  EXPECT_EQ(sd->media[1].protocol, "RTP/AVP");
  auto maps = sd->media[1].rtpmaps();
  ASSERT_EQ(maps.size(), 1u);
  EXPECT_EQ(maps[0].payload_type, 99);
  EXPECT_EQ(maps[0].encoding, "remoting");
  EXPECT_EQ(maps[0].clock_rate, 90000u);
  EXPECT_EQ(sd->media[1].fmtp(99), "retransmissions=yes");

  EXPECT_EQ(sd->media[2].protocol, "TCP/RTP/AVP");
  EXPECT_EQ(sd->media[2].port, 6000);  // same port as UDP (§10.3 rule)

  EXPECT_EQ(sd->media[3].port, 6006);
  EXPECT_EQ(sd->media[3].attribute("label"), "10");
}

TEST(Sdp, RoundTripThroughToString) {
  SessionDescription sd;
  MediaSection m;
  m.media = "application";
  m.port = 6000;
  m.protocol = "RTP/AVP";
  m.formats = {"99"};
  m.attributes = {{"rtpmap", "99 remoting/90000"},
                  {"fmtp", "99 retransmissions=no"}};
  sd.media.push_back(m);

  auto reparsed = SessionDescription::parse(sd.to_string());
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->media.size(), 1u);
  EXPECT_EQ(reparsed->media[0], m);
}

TEST(Sdp, FlagAttributesSupported) {
  const std::string text =
      "v=0\r\no=- 0 0 IN IP4 0.0.0.0\r\ns=x\r\n"
      "m=application 1000 RTP/AVP 99\r\n"
      "a=sendonly\r\n";
  auto sd = SessionDescription::parse(text);
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->media[0].attribute("sendonly"), "");
  EXPECT_FALSE(sd->media[0].attribute("recvonly").has_value());
}

TEST(Sdp, RejectsGarbageLines) {
  EXPECT_FALSE(SessionDescription::parse("nonsense\r\n").ok());
}

TEST(Sdp, RejectsNoMedia) {
  EXPECT_FALSE(SessionDescription::parse("v=0\r\ns=x\r\n").ok());
}

TEST(Sdp, RejectsWrongVersion) {
  EXPECT_FALSE(SessionDescription::parse("v=1\r\nm=application 1 RTP/AVP 99\r\n").ok());
}

TEST(Sdp, RejectsBadPort) {
  EXPECT_FALSE(
      SessionDescription::parse("v=0\r\nm=application 99999 RTP/AVP 99\r\n").ok());
}

TEST(Sdp, ToleratesLfOnlyLineEndings) {
  auto sd = SessionDescription::parse(
      "v=0\ns=x\nm=application 1000 RTP/AVP 99\na=rtpmap:99 remoting/90000\n");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->media[0].rtpmaps().size(), 1u);
}

TEST(Sdp, MalformedRtpmapSkipped) {
  auto sd = SessionDescription::parse(
      "v=0\nm=application 1000 RTP/AVP 99\na=rtpmap:banana\n");
  ASSERT_TRUE(sd.ok());
  EXPECT_TRUE(sd->media[0].rtpmaps().empty());
}

}  // namespace
}  // namespace ads
