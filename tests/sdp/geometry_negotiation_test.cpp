// Output-geometry negotiation (docs/TRANSCODE.md): the offer advertises the
// deepest downscale rung as a=geometry-max on the remoting m-lines; the
// answer requests a geometry with a=geometry:<token> on the accepted
// remoting m-line; the AH recovers it with answer_geometry(). Capability
// mismatches must fail the answer, not silently stream full resolution.
#include <gtest/gtest.h>

#include "sdp/sharing_session.hpp"

namespace ads {
namespace {

transcode::OutputGeometry quarter() { return {2, {}, false}; }

TEST(GeometryNegotiation, OfferAdvertisesMaxRungOnRemotingLines) {
  SharingOffer offer;
  offer.geometry_max_shift = 3;
  const SessionDescription sd = build_sharing_offer(offer);

  int remoting_lines = 0;
  for (const MediaSection& m : sd.media) {
    const bool remoting = m.protocol == "RTP/AVP" || m.protocol == "TCP/RTP/AVP";
    const auto gmax = m.attribute("geometry-max");
    if (remoting && m.port == offer.remoting_port) {
      ++remoting_lines;
      ASSERT_TRUE(gmax.has_value()) << m.protocol;
      EXPECT_EQ(*gmax, "3");
    }
  }
  EXPECT_EQ(remoting_lines, 2);  // UDP + TCP
  // The HIP m-line and BFCP m-line stay geometry-free.
  EXPECT_FALSE(sd.media.front().attribute("geometry-max").has_value());

  const auto parsed = parse_sharing_offer(sd);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->geometry_max_shift.has_value());
  EXPECT_EQ(*parsed->geometry_max_shift, 3);
}

TEST(GeometryNegotiation, WithheldCapabilityIsAbsentFromOfferAndParse) {
  SharingOffer offer;
  offer.geometry_max_shift = 255;  // geometry-blind AH
  const SessionDescription sd = build_sharing_offer(offer);
  for (const MediaSection& m : sd.media) {
    EXPECT_FALSE(m.attribute("geometry-max").has_value());
  }
  const auto parsed = parse_sharing_offer(sd);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->geometry_max_shift.has_value());
}

TEST(GeometryNegotiation, AnswerCarriesTokenOnAcceptedRemotingLine) {
  const SessionDescription offer_sd = build_sharing_offer(SharingOffer{});
  AnswerChoice choice;
  choice.transport = AnswerChoice::Transport::kUdp;
  choice.geometry = {1, {8, 8, 64, 48}, false};
  const auto answer = build_sharing_answer(offer_sd, choice);
  ASSERT_TRUE(answer.ok());

  int tokens = 0;
  for (const MediaSection& m : answer->media) {
    if (const auto tok = m.attribute("geometry")) {
      ++tokens;
      EXPECT_NE(m.port, 0) << "token must ride the accepted m-line";
      EXPECT_EQ(*tok, transcode::to_token(choice.geometry));
    }
  }
  EXPECT_EQ(tokens, 1);

  const auto recovered = answer_geometry(*answer);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, choice.geometry);
}

TEST(GeometryNegotiation, IdentityAnswerOmitsAttribute) {
  const SessionDescription offer_sd = build_sharing_offer(SharingOffer{});
  const auto answer = build_sharing_answer(offer_sd, AnswerChoice{});
  ASSERT_TRUE(answer.ok());
  for (const MediaSection& m : answer->media) {
    EXPECT_FALSE(m.attribute("geometry").has_value());
  }
  const auto recovered = answer_geometry(*answer);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->identity());
}

TEST(GeometryNegotiation, RequestAgainstGeometryBlindOfferFails) {
  SharingOffer offer;
  offer.geometry_max_shift = 255;
  AnswerChoice choice;
  choice.geometry = quarter();
  const auto answer = build_sharing_answer(build_sharing_offer(offer), choice);
  EXPECT_FALSE(answer.ok());
}

TEST(GeometryNegotiation, RequestPastMaxRungFails) {
  SharingOffer offer;
  offer.geometry_max_shift = 1;
  AnswerChoice choice;
  choice.geometry = quarter();  // shift 2 > max 1
  EXPECT_FALSE(build_sharing_answer(build_sharing_offer(offer), choice).ok());

  choice.geometry = {1, {}, false};  // at the rung: fine
  EXPECT_TRUE(build_sharing_answer(build_sharing_offer(offer), choice).ok());
}

TEST(GeometryNegotiation, ViewportAndFollowRideTheCapability) {
  // Crop/follow at shift 0 still requires the capability (the AH must
  // understand output geometry to honour them)…
  SharingOffer blind;
  blind.geometry_max_shift = 255;
  AnswerChoice choice;
  choice.geometry = {0, {10, 10, 100, 80}, true};
  EXPECT_FALSE(build_sharing_answer(build_sharing_offer(blind), choice).ok());
  // …and any advertised rung covers them.
  SharingOffer shallow;
  shallow.geometry_max_shift = 0;
  const auto answer = build_sharing_answer(build_sharing_offer(shallow), choice);
  ASSERT_TRUE(answer.ok());
  const auto recovered = answer_geometry(*answer);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, choice.geometry);
}

TEST(GeometryNegotiation, MalformedAnswerTokenIsRejected) {
  const SessionDescription offer_sd = build_sharing_offer(SharingOffer{});
  auto answer = build_sharing_answer(offer_sd, AnswerChoice{});
  ASSERT_TRUE(answer.ok());
  for (MediaSection& m : answer->media) {
    if (m.port != 0 && m.protocol == "TCP/RTP/AVP" &&
        !m.rtpmaps().empty() && m.rtpmaps().front().encoding == "remoting") {
      m.attributes.emplace_back("geometry", "bogus");
    }
  }
  EXPECT_FALSE(answer_geometry(*answer).has_value());
}

}  // namespace
}  // namespace ads
