#include "sdp/sharing_session.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(SharingOffer, BuildsSection103Shape) {
  const SessionDescription sd = build_sharing_offer(SharingOffer{});
  ASSERT_EQ(sd.media.size(), 4u);
  EXPECT_EQ(sd.media[0].protocol, "TCP/BFCP");
  EXPECT_EQ(sd.media[1].protocol, "RTP/AVP");
  EXPECT_EQ(sd.media[2].protocol, "TCP/RTP/AVP");
  EXPECT_EQ(sd.media[3].protocol, "TCP/RTP/AVP");
  // §10.3: "The port numbers MUST be same if AH is remoting the same
  // content over both TCP and UDP."
  EXPECT_EQ(sd.media[1].port, sd.media[2].port);
}

TEST(SharingOffer, RoundTripThroughParser) {
  SharingOffer offer;
  offer.remoting_port = 7000;
  offer.hip_port = 7006;
  offer.retransmissions = false;
  const auto sd = build_sharing_offer(offer);
  auto reparsed = SessionDescription::parse(sd.to_string());
  ASSERT_TRUE(reparsed.ok());
  auto parsed = parse_sharing_offer(*reparsed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->udp_remoting_port, 7000);
  EXPECT_EQ(parsed->tcp_remoting_port, 7000);
  EXPECT_EQ(parsed->hip_port, 7006);
  EXPECT_EQ(parsed->remoting_pt, 99);
  EXPECT_EQ(parsed->hip_pt, 100);
  EXPECT_FALSE(parsed->retransmissions);
  EXPECT_EQ(parsed->bfcp_port, 50000);
  EXPECT_EQ(parsed->floor_id, 0);
  EXPECT_EQ(parsed->label, 10);
}

TEST(SharingOffer, RetransmissionsYesDetected) {
  const auto sd = build_sharing_offer(SharingOffer{});
  auto parsed = parse_sharing_offer(sd);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->retransmissions);
}

TEST(SharingOffer, UdpOnlyOffer) {
  SharingOffer offer;
  offer.offer_tcp = false;
  auto parsed = parse_sharing_offer(build_sharing_offer(offer));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->udp_remoting_port.has_value());
  EXPECT_FALSE(parsed->tcp_remoting_port.has_value());
}

TEST(SharingOffer, TcpOnlyOffer) {
  SharingOffer offer;
  offer.offer_udp = false;
  auto parsed = parse_sharing_offer(build_sharing_offer(offer));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->udp_remoting_port.has_value());
  EXPECT_TRUE(parsed->tcp_remoting_port.has_value());
}

TEST(SharingOffer, ParseDraftExampleVerbatim) {
  // The §10.3 example straight from the document (with its fmtp quirk).
  const std::string text =
      "v=0\n"
      "m=application 50000 TCP/BFCP *\n"
      "a=floorid:0 m-stream:10\n"
      "m=application 6000 RTP/AVP 99\n"
      "a=rtpmap:99 remoting/90000\n"
      "a=fmtp: retransmissions=yes\n"
      "m=application 6000 TCP/RTP/AVP 99\n"
      "a=rtpmap:99 remoting/90000\n"
      "m=application 6006 TCP/RTP/AVP 100\n"
      "a=rtpmap:100 hip/90000\n"
      "a=label:10\n";
  auto sd = SessionDescription::parse(text);
  ASSERT_TRUE(sd.ok());
  auto parsed = parse_sharing_offer(*sd);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->bfcp_port, 50000);
  EXPECT_EQ(parsed->udp_remoting_port, 6000);
  EXPECT_EQ(parsed->tcp_remoting_port, 6000);
  EXPECT_EQ(parsed->hip_port, 6006);
  EXPECT_TRUE(parsed->retransmissions);
}

TEST(SharingOffer, RejectsOfferWithoutSharingStreams) {
  SessionDescription sd;
  MediaSection m;
  m.media = "audio";
  m.port = 5000;
  m.protocol = "RTP/AVP";
  m.formats = {"0"};
  sd.media.push_back(m);
  EXPECT_FALSE(parse_sharing_offer(sd).ok());
}

}  // namespace
}  // namespace ads
