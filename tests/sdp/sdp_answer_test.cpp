#include <gtest/gtest.h>

#include "sdp/sharing_session.hpp"

namespace ads {
namespace {

SessionDescription offer() { return build_sharing_offer(SharingOffer{}); }

TEST(SdpAnswer, MirrorsMLineOrder) {
  auto answer = build_sharing_answer(offer(), AnswerChoice{});
  ASSERT_TRUE(answer.ok());
  const auto off = offer();
  ASSERT_EQ(answer->media.size(), off.media.size());
  for (std::size_t i = 0; i < off.media.size(); ++i) {
    EXPECT_EQ(answer->media[i].protocol, off.media[i].protocol);
    EXPECT_EQ(answer->media[i].formats, off.media[i].formats);
  }
}

TEST(SdpAnswer, TcpChoiceRejectsUdpRemoting) {
  AnswerChoice choice;
  choice.transport = AnswerChoice::Transport::kTcp;
  auto answer = build_sharing_answer(offer(), choice);
  ASSERT_TRUE(answer.ok());
  // m-lines: [0]=BFCP, [1]=UDP remoting, [2]=TCP remoting, [3]=HIP.
  EXPECT_NE(answer->media[0].port, 0);
  EXPECT_EQ(answer->media[1].port, 0);  // rejected
  EXPECT_NE(answer->media[2].port, 0);
  EXPECT_NE(answer->media[3].port, 0);
}

TEST(SdpAnswer, UdpChoiceRejectsTcpRemoting) {
  AnswerChoice choice;
  choice.transport = AnswerChoice::Transport::kUdp;
  auto answer = build_sharing_answer(offer(), choice);
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->media[1].port, 0);
  EXPECT_EQ(answer->media[2].port, 0);
}

TEST(SdpAnswer, BfcpCanBeDeclined) {
  AnswerChoice choice;
  choice.accept_bfcp = false;
  auto answer = build_sharing_answer(offer(), choice);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->media[0].port, 0);
}

TEST(SdpAnswer, FailsWhenTransportUnavailable) {
  SharingOffer tcp_only;
  tcp_only.offer_udp = false;
  AnswerChoice choice;
  choice.transport = AnswerChoice::Transport::kUdp;
  auto answer = build_sharing_answer(build_sharing_offer(tcp_only), choice);
  ASSERT_FALSE(answer.ok());
}

TEST(SdpAnswer, AnswerReparsesCleanly) {
  auto answer = build_sharing_answer(offer(), AnswerChoice{});
  ASSERT_TRUE(answer.ok());
  auto reparsed = SessionDescription::parse(answer->to_string());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->media.size(), 4u);
}

TEST(SdpAnswer, AssignsSequentialLocalPorts) {
  AnswerChoice choice;
  choice.local_port_base = 9000;
  auto answer = build_sharing_answer(offer(), choice);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->media[0].port, 9000);
  EXPECT_EQ(answer->media[2].port, 9001);
  EXPECT_EQ(answer->media[3].port, 9002);
}

}  // namespace
}  // namespace ads
