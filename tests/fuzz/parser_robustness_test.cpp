// Parser robustness sweep: every wire parser in the system is fed random
// bytes and randomly mutated valid messages. The property under test is
// uniform — parsers return a value or a ParseError; they never crash,
// never read out of bounds (ASAN-visible), and never loop forever.
#include <gtest/gtest.h>

#include "bfcp/bfcp_message.hpp"
#include "codec/dct_codec.hpp"
#include "codec/png.hpp"
#include "codec/raw_codec.hpp"
#include "codec/rle_codec.hpp"
#include "codec/zlib.hpp"
#include "hip/messages.hpp"
#include "remoting/message.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_packet.hpp"
#include "sdp/sdp.hpp"
#include "util/prng.hpp"

namespace ads {
namespace {

Bytes random_bytes(Prng& rng, std::size_t max_len) {
  Bytes out(rng.below(max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u32());
  return out;
}

/// Flip a few random bytes/bits of a valid message.
Bytes mutate(Prng& rng, Bytes data) {
  if (data.empty()) return data;
  const int edits = 1 + static_cast<int>(rng.below(5));
  for (int i = 0; i < edits; ++i) {
    const std::size_t pos = rng.below(data.size());
    switch (rng.below(3)) {
      case 0: data[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8)); break;
      case 1: data[pos] = static_cast<std::uint8_t>(rng.next_u32()); break;
      default:
        data.resize(pos);  // truncate
        if (data.empty()) return data;
        break;
    }
  }
  return data;
}

constexpr int kRandomIterations = 3000;
constexpr int kMutationIterations = 1000;

TEST(ParserRobustness, RtpPacketRandomBytes) {
  Prng rng(1);
  for (int i = 0; i < kRandomIterations; ++i) {
    auto result = RtpPacket::parse(random_bytes(rng, 100));
    (void)result;
  }
}

TEST(ParserRobustness, RtcpRandomBytes) {
  Prng rng(2);
  for (int i = 0; i < kRandomIterations; ++i) {
    (void)parse_rtcp(random_bytes(rng, 120));
    (void)RtcpFeedback::parse(random_bytes(rng, 120));
  }
}

TEST(ParserRobustness, RemotingDemuxRandomBytes) {
  Prng rng(3);
  RemotingDemux demux;
  for (int i = 0; i < kRandomIterations; ++i) {
    (void)demux.feed(random_bytes(rng, 200), rng.chance(0.5));
  }
}

TEST(ParserRobustness, RemotingDemuxMutatedMessages) {
  Prng rng(4);
  WindowManagerInfo wmi;
  wmi.records = {{1, 1, 10, 10, 100, 100}, {2, 0, 50, 50, 30, 30}};
  RegionUpdate ru;
  ru.window_id = 1;
  ru.content_pt = 98;
  ru.content = random_bytes(rng, 3000);
  MoveRectangle mr{1, 0, 0, 10, 10, 5, 5};

  std::vector<Bytes> corpus;
  corpus.push_back(wmi.serialize());
  for (const auto& frag : fragment_region_update(ru, 400)) {
    corpus.push_back(frag.payload);
  }
  corpus.push_back(mr.serialize());

  RemotingDemux demux;
  for (int i = 0; i < kMutationIterations; ++i) {
    const Bytes& base = corpus[rng.below(corpus.size())];
    (void)demux.feed(mutate(rng, base), rng.chance(0.5));
  }
}

TEST(ParserRobustness, HipRandomAndMutated) {
  Prng rng(5);
  for (int i = 0; i < kRandomIterations; ++i) {
    (void)parse_hip(random_bytes(rng, 64));
  }
  const Bytes valid = serialize_hip(MouseWheelMoved{3, 100, 200, -360});
  for (int i = 0; i < kMutationIterations; ++i) {
    (void)parse_hip(mutate(rng, valid));
  }
}

TEST(ParserRobustness, BfcpRandomAndMutated) {
  Prng rng(6);
  for (int i = 0; i < kRandomIterations; ++i) {
    (void)BfcpMessage::parse(random_bytes(rng, 80));
  }
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequestStatus;
  msg.floor_id = 0;
  msg.request_status = RequestStatus::kGranted;
  msg.hid_status = HidStatus::kAllAllowed;
  const Bytes valid = msg.serialize();
  for (int i = 0; i < kMutationIterations; ++i) {
    (void)BfcpMessage::parse(mutate(rng, valid));
  }
}

TEST(ParserRobustness, CodecsRandomBytes) {
  Prng rng(7);
  for (int i = 0; i < 500; ++i) {
    (void)png_decode(random_bytes(rng, 300));
    (void)rle_decode(random_bytes(rng, 300));
    (void)raw_decode(random_bytes(rng, 300));
    (void)dct_decode(random_bytes(rng, 300));
    (void)zlib_decompress(random_bytes(rng, 300), {.max_output = 1 << 20});
  }
}

TEST(ParserRobustness, CodecsMutatedStreams) {
  Prng rng(8);
  Image img(24, 18);
  for (auto& p : img.pixels()) {
    p = Pixel{static_cast<std::uint8_t>(rng.next_u32()),
              static_cast<std::uint8_t>(rng.next_u32()),
              static_cast<std::uint8_t>(rng.next_u32()), 255};
  }
  const Bytes png = png_encode(img);
  const Bytes rle = rle_encode(img);
  const Bytes dct = dct_encode(img);
  for (int i = 0; i < kMutationIterations; ++i) {
    (void)png_decode(mutate(rng, png));
    (void)rle_decode(mutate(rng, rle));
    (void)dct_decode(mutate(rng, dct));
  }
}

TEST(ParserRobustness, SdpRandomText) {
  Prng rng(9);
  for (int i = 0; i < 800; ++i) {
    const Bytes raw = random_bytes(rng, 300);
    std::string text(raw.begin(), raw.end());
    (void)SessionDescription::parse(text);
  }
}

TEST(ParserRobustness, SdpMutatedOffer) {
  Prng rng(10);
  SessionDescription offer;
  MediaSection m;
  m.media = "application";
  m.port = 6000;
  m.protocol = "RTP/AVP";
  m.formats = {"99"};
  m.attributes = {{"rtpmap", "99 remoting/90000"}};
  offer.media.push_back(m);
  const std::string base = offer.to_string();
  for (int i = 0; i < kMutationIterations; ++i) {
    Bytes data(base.begin(), base.end());
    data = mutate(rng, std::move(data));
    (void)SessionDescription::parse(std::string(data.begin(), data.end()));
  }
}

}  // namespace
}  // namespace ads
